//! Partitioning of the fabric into contiguous router regions for the
//! sharded (intra-run parallel) simulator core.
//!
//! A [`RegionMap`] assigns every router — and the node attached to it —
//! to one region. The sharded machine runs one fabric replica per region;
//! packets that land on a router in another region are handed off through
//! the shard mailboxes (see `Fabric` region mode) instead of being placed
//! directly. The map is part of the shard *plan*: it depends only on the
//! topology and the requested region count, never on the worker count, so
//! the same plan replayed with any number of workers partitions events
//! identically.

use crate::fabric::QueueRef;
use crate::ids::{NodeId, RouterId};

/// Assignment of routers (and their attached nodes) to regions.
///
/// # Examples
///
/// ```
/// use flash_net::{NodeId, RegionMap, RouterId};
///
/// let map = RegionMap::stripes(10, 4);
/// assert_eq!(map.n_regions(), 4);
/// assert_eq!(map.of_router(RouterId(0)), 0);
/// assert_eq!(map.of_router(RouterId(9)), 3);
/// assert_eq!(map.of_node(NodeId(5)), map.of_router(RouterId(5)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionMap {
    of_router: Vec<u16>,
    n_regions: u16,
}

impl RegionMap {
    /// Splits `n_routers` routers into `n_regions` contiguous stripes of
    /// near-equal size (the first `n_routers % n_regions` stripes take one
    /// extra router). Every region is non-empty, so `n_regions` is clamped
    /// to `n_routers`.
    ///
    /// Contiguous id stripes match the row-major node numbering of
    /// [`crate::Mesh2D`], giving each region a compact block of mesh rows
    /// and so few boundary links relative to its area.
    pub fn stripes(n_routers: usize, n_regions: usize) -> RegionMap {
        assert!(n_routers > 0, "cannot partition an empty fabric");
        assert!(n_regions > 0, "need at least one region");
        let n_regions = n_regions.min(n_routers);
        let base = n_routers / n_regions;
        let extra = n_routers % n_regions;
        let mut of_router = Vec::with_capacity(n_routers);
        for region in 0..n_regions {
            let len = base + usize::from(region < extra);
            of_router.extend(std::iter::repeat_n(region as u16, len));
        }
        debug_assert_eq!(of_router.len(), n_routers);
        RegionMap {
            of_router,
            n_regions: n_regions as u16,
        }
    }

    /// Number of regions.
    pub fn n_regions(&self) -> u16 {
        self.n_regions
    }

    /// Number of routers covered by the map.
    pub fn n_routers(&self) -> usize {
        self.of_router.len()
    }

    /// The region of a router.
    pub fn of_router(&self, r: RouterId) -> u16 {
        self.of_router[r.index()]
    }

    /// The region of a node. Node `i` attaches to router `i`, so a node
    /// always shares its router's region and node-to-router injection
    /// never crosses a region boundary.
    pub fn of_node(&self, n: NodeId) -> u16 {
        self.of_router[n.index()]
    }

    /// The region owning a fabric queue: the router holding the queue, or
    /// the injecting node's router.
    pub fn of_queue(&self, qr: QueueRef) -> u16 {
        match qr {
            QueueRef::Out { router, .. } => self.of_router[router as usize],
            QueueRef::Inj { node } => self.of_router[node as usize],
        }
    }

    /// Iterates the routers of one region (ascending id order).
    pub fn routers_of(&self, region: u16) -> impl Iterator<Item = RouterId> + '_ {
        self.of_router
            .iter()
            .enumerate()
            .filter(move |&(_, &reg)| reg == region)
            .map(|(i, _)| RouterId(i as u16))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripes_cover_all_routers_contiguously() {
        for (n_routers, n_regions) in [(8, 1), (8, 3), (8, 8), (7, 2), (128, 8), (3, 16)] {
            let map = RegionMap::stripes(n_routers, n_regions);
            assert_eq!(map.n_routers(), n_routers);
            assert!(map.n_regions() as usize <= n_routers);
            // Regions are non-empty, contiguous and sized within one of
            // each other.
            let mut sizes = vec![0usize; map.n_regions() as usize];
            let mut last = 0u16;
            for i in 0..n_routers {
                let r = map.of_router(RouterId(i as u16));
                assert!(r >= last, "regions must be contiguous stripes");
                last = r;
                sizes[r as usize] += 1;
            }
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(*min >= 1);
            assert!(max - min <= 1, "stripes must be balanced: {sizes:?}");
        }
    }

    #[test]
    fn queue_region_follows_owner() {
        let map = RegionMap::stripes(6, 2);
        assert_eq!(map.of_queue(QueueRef::Out { router: 4, nbr: 0 }), 1);
        assert_eq!(map.of_queue(QueueRef::Inj { node: 1 }), 0);
        assert_eq!(map.routers_of(0).count() + map.routers_of(1).count(), 6);
    }
}
