//! Routing tables and post-fault route recomputation.
//!
//! During normal operation the routers use the deadlock-free tables produced
//! by [`Topology::initial_tables`](crate::Topology::initial_tables). After a
//! fault, the interconnect-recovery phase computes new tables over the
//! surviving routers and links. The paper uses a turn-model approach and
//! notes that a fully general deadlock-free rerouting is an open problem; we
//! substitute **up*/down*** routing, a standard method that is deadlock-free
//! by construction on any connected survivor graph (see DESIGN.md).

use crate::graph::UGraph;
use crate::ids::RouterId;

/// One routing-table entry: what a router does with a packet for a given
/// destination router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hop {
    /// Deliver to the locally attached node.
    Local,
    /// Forward to this neighboring router.
    Toward(RouterId),
    /// Drop the packet (used to isolate failed regions).
    Discard,
    /// No route known; treated as a drop and counted separately.
    Unreachable,
}

/// Per-router routing tables: a dense `routers x routers` matrix of [`Hop`]s.
///
/// # Examples
///
/// ```
/// use flash_net::{Mesh2D, Topology, Hop, RouterId};
///
/// let tables = Mesh2D::new(2, 2).initial_tables();
/// assert_eq!(tables.hop(RouterId(0), RouterId(0)), Hop::Local);
/// assert!(matches!(tables.hop(RouterId(0), RouterId(3)), Hop::Toward(_)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoutingTables {
    n: usize,
    entries: Vec<Hop>,
}

impl RoutingTables {
    /// Creates tables for `n` routers with every entry `Unreachable`.
    pub fn unreachable(n: usize) -> Self {
        RoutingTables {
            n,
            entries: vec![Hop::Unreachable; n * n],
        }
    }

    /// Number of routers covered.
    pub fn num_routers(&self) -> usize {
        self.n
    }

    /// Reads the entry for packets at `at` destined to `dest`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn hop(&self, at: RouterId, dest: RouterId) -> Hop {
        self.entries[at.index() * self.n + dest.index()]
    }

    /// Writes the entry for packets at `at` destined to `dest`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn set(&mut self, at: RouterId, dest: RouterId, hop: Hop) {
        self.entries[at.index() * self.n + dest.index()] = hop;
    }

    /// Marks every entry pointing `at` router toward `dead` (as destination)
    /// as `Discard`, on all routers. Used when isolating failed regions.
    pub fn discard_destination(&mut self, dead: RouterId) {
        for r in 0..self.n {
            self.entries[r * self.n + dead.index()] = Hop::Discard;
        }
    }

    /// Walks the tables from `s` to `d`, returning the hop count, or `None`
    /// if the walk drops, dead-ends, or exceeds `2 * n` hops (loop).
    pub fn route_length(&self, s: RouterId, d: RouterId) -> Option<u32> {
        let mut at = s;
        let mut hops = 0;
        loop {
            match self.hop(at, d) {
                Hop::Local => return if at == d { Some(hops) } else { None },
                Hop::Toward(next) => {
                    at = next;
                    hops += 1;
                    if hops > 2 * self.n as u32 {
                        return None;
                    }
                }
                Hop::Discard | Hop::Unreachable => return None,
            }
        }
    }
}

/// Computes up*/down* routing tables over the survivor graph.
///
/// `graph` must contain exactly the *live* links (edges between live
/// routers); `alive` marks live routers; `root` is the root of the
/// up*/down* orientation and must be live. Entries for dead or unreachable
/// destinations are set to [`Hop::Discard`] so traffic toward failed regions
/// is dropped at the first router rather than congesting the network.
///
/// The resulting routing relation is deadlock-free: every path consists of
/// zero or more "up" moves (toward the root in `(BFS level, id)` order)
/// followed by zero or more "down" moves, so the channel-dependency graph is
/// acyclic (verified by [`channel_dependencies_acyclic`] in the test suite).
///
/// # Panics
///
/// Panics if `root` is out of range or dead.
pub fn up_down_tables(graph: &UGraph, alive: &[bool], root: RouterId) -> RoutingTables {
    let n = graph.len();
    assert!(alive[root.index()], "up*/down* root must be alive");
    let level = graph.bfs_distances(root.0, alive);
    // Total order used for edge orientation: (level, id), smaller is "upper".
    let key = |v: u16| (level[v as usize], v);

    let mut tables = RoutingTables::unreachable(n);

    // Order of processing for the up-phase DP: increasing key, so that all
    // up-neighbors (smaller key) of a router are finished first.
    let mut order: Vec<u16> = (0..n as u16)
        .filter(|&v| alive[v as usize] && level[v as usize] != u32::MAX)
        .collect();
    order.sort_by_key(|&v| key(v));

    for &d in &order {
        // Distances to d along strictly key-descending (reverse-down) moves:
        // dist_down[u] = length of an all-down path u -> d.
        let mut dist_down = vec![u32::MAX; n];
        dist_down[d as usize] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(d);
        while let Some(v) = queue.pop_front() {
            for &u in graph.neighbors(v) {
                if alive[u as usize]
                    && level[u as usize] != u32::MAX
                    && key(u) < key(v)
                    && dist_down[u as usize] == u32::MAX
                {
                    dist_down[u as usize] = dist_down[v as usize] + 1;
                    queue.push_back(u);
                }
            }
        }

        // cost[u]: length of the table route u -> d; fill next hops.
        let mut cost = vec![u32::MAX; n];
        for &u in &order {
            if u == d {
                cost[u as usize] = 0;
                tables.set(RouterId(u), RouterId(d), Hop::Local);
                continue;
            }
            if dist_down[u as usize] != u32::MAX {
                // Commit to an all-down continuation: pick the down-neighbor
                // one step closer to d (smallest id tie-break).
                let next = graph
                    .neighbors(u)
                    .iter()
                    .copied()
                    .filter(|&v| {
                        alive[v as usize]
                            && key(v) > key(u)
                            && dist_down[v as usize] == dist_down[u as usize] - 1
                    })
                    .min()
                    .expect("down path must have a next hop");
                cost[u as usize] = dist_down[u as usize];
                tables.set(RouterId(u), RouterId(d), Hop::Toward(RouterId(next)));
            } else {
                // Go up first: pick the up-neighbor with the cheapest
                // already-computed route (up-neighbors precede u in `order`).
                let mut best: Option<(u32, u16)> = None;
                for &v in graph.neighbors(u) {
                    if alive[v as usize] && key(v) < key(u) && cost[v as usize] != u32::MAX {
                        let c = cost[v as usize] + 1;
                        if best.is_none_or(|(bc, bv)| (c, v) < (bc, bv)) {
                            best = Some((c, v));
                        }
                    }
                }
                if let Some((c, v)) = best {
                    cost[u as usize] = c;
                    tables.set(RouterId(u), RouterId(d), Hop::Toward(RouterId(v)));
                }
                // else: u is disconnected from d; stays Unreachable, fixed
                // to Discard below.
            }
        }
    }

    // Dead or unreachable destinations: discard at every router.
    for dst in 0..n as u16 {
        let dead_dst = !alive[dst as usize] || level[dst as usize] == u32::MAX;
        for r in 0..n as u16 {
            if dead_dst || !alive[r as usize] || level[r as usize] == u32::MAX {
                if tables.hop(RouterId(r), RouterId(dst)) == Hop::Unreachable || dead_dst {
                    tables.set(RouterId(r), RouterId(dst), Hop::Discard);
                }
            } else if tables.hop(RouterId(r), RouterId(dst)) == Hop::Unreachable {
                // Live router, live dest, but different components.
                tables.set(RouterId(r), RouterId(dst), Hop::Discard);
            }
        }
    }

    tables
}

/// Checks that the channel-dependency graph induced by `tables` over the
/// live links in `graph` is acyclic — the classical criterion for
/// deadlock-free table routing. Used by tests and the property suite.
pub fn channel_dependencies_acyclic(
    tables: &RoutingTables,
    graph: &UGraph,
    alive: &[bool],
) -> bool {
    let n = graph.len();
    // Channel = directed pair (u, v) over an edge; index channels densely.
    let mut chan_index = std::collections::HashMap::new();
    let mut chans = Vec::new();
    for u in 0..n as u16 {
        for &v in graph.neighbors(u) {
            if alive[u as usize] && alive[v as usize] {
                chan_index.insert((u, v), chans.len());
                chans.push((u, v));
            }
        }
    }
    // Dependency (u->v) => (v->w) if some destination routes u->v then v->w.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); chans.len()];
    for d in 0..n as u16 {
        for u in 0..n as u16 {
            if !alive[u as usize] {
                continue;
            }
            if let Hop::Toward(v) = tables.hop(RouterId(u), RouterId(d)) {
                if let Hop::Toward(w) = tables.hop(v, RouterId(d)) {
                    let (Some(&c1), Some(&c2)) =
                        (chan_index.get(&(u, v.0)), chan_index.get(&(v.0, w.0)))
                    else {
                        continue;
                    };
                    deps[c1].push(c2);
                }
            }
        }
    }
    // DFS cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Gray,
        Black,
    }
    let mut mark = vec![Mark::White; chans.len()];
    let mut stack = Vec::new();
    for start in 0..chans.len() {
        if mark[start] != Mark::White {
            continue;
        }
        stack.push((start, 0usize));
        mark[start] = Mark::Gray;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < deps[v].len() {
                let next = deps[v][*i];
                *i += 1;
                match mark[next] {
                    Mark::White => {
                        mark[next] = Mark::Gray;
                        stack.push((next, 0));
                    }
                    Mark::Gray => return false,
                    Mark::Black => {}
                }
            } else {
                mark[v] = Mark::Black;
                stack.pop();
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Hypercube, Mesh2D, Topology};

    fn graph_of(topo: &impl Topology) -> UGraph {
        UGraph::from_edges(
            topo.num_routers(),
            topo.links().iter().map(|l| (l.a.0, l.b.0)),
        )
    }

    #[test]
    fn up_down_routes_connect_all_survivors() {
        let mesh = Mesh2D::new(4, 4);
        let g = graph_of(&mesh);
        let mut alive = vec![true; 16];
        // Kill a 2x2 block in the middle.
        for r in [5usize, 6, 9, 10] {
            alive[r] = false;
        }
        let root = RouterId(0);
        let tables = up_down_tables(&g_alive(&g, &alive), &alive, root);
        for s in 0..16u16 {
            for d in 0..16u16 {
                if alive[s as usize] && alive[d as usize] {
                    assert!(
                        tables.route_length(RouterId(s), RouterId(d)).is_some(),
                        "no route {s}->{d}"
                    );
                }
            }
        }
    }

    /// Restricts a graph to live vertices (removes edges touching dead ones).
    fn g_alive(g: &UGraph, alive: &[bool]) -> UGraph {
        let mut out = UGraph::new(g.len());
        for u in 0..g.len() as u16 {
            for &v in g.neighbors(u) {
                if alive[u as usize] && alive[v as usize] {
                    out.add_edge(u, v);
                }
            }
        }
        out
    }

    #[test]
    fn up_down_is_deadlock_free_on_healthy_mesh() {
        let mesh = Mesh2D::new(4, 4);
        let g = graph_of(&mesh);
        let alive = vec![true; 16];
        let tables = up_down_tables(&g, &alive, RouterId(0));
        assert!(channel_dependencies_acyclic(&tables, &g, &alive));
    }

    #[test]
    fn up_down_is_deadlock_free_after_failures() {
        let mesh = Mesh2D::new(4, 4);
        let g = graph_of(&mesh);
        let mut alive = vec![true; 16];
        for r in [1usize, 7, 12] {
            alive[r] = false;
        }
        let live = g_alive(&g, &alive);
        let tables = up_down_tables(&live, &alive, RouterId(0));
        assert!(channel_dependencies_acyclic(&tables, &live, &alive));
        // Survivors still mutually reachable (this failure set keeps the
        // mesh connected).
        for s in 0..16u16 {
            for d in 0..16u16 {
                if alive[s as usize] && alive[d as usize] {
                    assert!(tables.route_length(RouterId(s), RouterId(d)).is_some());
                }
            }
        }
    }

    #[test]
    fn dead_destinations_are_discarded() {
        let mesh = Mesh2D::new(2, 2);
        let g = graph_of(&mesh);
        let mut alive = vec![true; 4];
        alive[3] = false;
        let live = g_alive(&g, &alive);
        let tables = up_down_tables(&live, &alive, RouterId(0));
        for r in 0..3u16 {
            assert_eq!(tables.hop(RouterId(r), RouterId(3)), Hop::Discard);
        }
    }

    #[test]
    fn dimension_order_mesh_is_deadlock_free() {
        let mesh = Mesh2D::new(4, 3);
        let g = graph_of(&mesh);
        let alive = vec![true; 12];
        let tables = mesh.initial_tables();
        assert!(channel_dependencies_acyclic(&tables, &g, &alive));
    }

    #[test]
    fn ecube_hypercube_is_deadlock_free() {
        let cube = Hypercube::new(4);
        let g = graph_of(&cube);
        let alive = vec![true; 16];
        let tables = cube.initial_tables();
        assert!(channel_dependencies_acyclic(&tables, &g, &alive));
    }

    #[test]
    fn route_length_detects_drops() {
        let mut tables = RoutingTables::unreachable(2);
        tables.set(RouterId(0), RouterId(1), Hop::Discard);
        assert_eq!(tables.route_length(RouterId(0), RouterId(1)), None);
        tables.set(RouterId(0), RouterId(0), Hop::Local);
        assert_eq!(tables.route_length(RouterId(0), RouterId(0)), Some(0));
    }

    #[test]
    fn discard_destination_blankets_all_routers() {
        let mesh = Mesh2D::new(2, 2);
        let mut tables = mesh.initial_tables();
        tables.discard_destination(RouterId(2));
        for r in 0..4u16 {
            assert_eq!(tables.hop(RouterId(r), RouterId(2)), Hop::Discard);
        }
    }
}
