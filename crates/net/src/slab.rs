//! Per-packet bookkeeping, interned in a slab keyed by [`PacketId`].

use crate::ids::PacketId;
use flash_sim::SimTime;

/// Bookkeeping the fabric keeps for each in-flight packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketMeta {
    /// When the packet was accepted into its injection queue.
    pub injected_at: SimTime,
    /// Router-to-router link crossings taken so far.
    pub links_crossed: u32,
}

#[derive(Clone, Debug)]
struct Slot {
    gen: u32,
    live: bool,
    meta: PacketMeta,
}

/// Free-list slab of in-flight packet metadata, keyed by [`PacketId`].
///
/// The slot index is encoded in the low 32 bits of the id and the slot's
/// generation in the high 32, so the id itself is the key: lookup is an O(1)
/// decode plus a generation check (a stale id of a retired packet simply
/// misses), no hashing, and slots recycle as packets retire. Ids stay unique
/// for the lifetime of a fabric, and allocation order is driven by the
/// deterministic event order, so a given (configuration, seed) still yields
/// identical ids.
#[derive(Clone, Debug, Default)]
pub(crate) struct PacketSlab {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl PacketSlab {
    /// Interns metadata for a newly injected packet, returning its id.
    pub(crate) fn alloc(&mut self, injected_at: SimTime) -> PacketId {
        self.alloc_with_meta(PacketMeta {
            injected_at,
            links_crossed: 0,
        })
    }

    /// Interns existing metadata under a fresh id — used when a packet
    /// crosses a region boundary (or when regions are melded back
    /// together) and must be re-interned in the receiving fabric's slab
    /// without losing its accumulated bookkeeping.
    pub(crate) fn alloc_with_meta(&mut self, meta: PacketMeta) -> PacketId {
        let slot = match self.free.pop() {
            Some(s) => {
                let sl = &mut self.slots[s as usize];
                sl.live = true;
                sl.meta = meta;
                s
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    live: true,
                    meta,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.live += 1;
        PacketId(u64::from(slot) | (u64::from(self.slots[slot as usize].gen) << 32))
    }

    #[inline]
    fn decode(&self, id: PacketId) -> Option<usize> {
        let slot = (id.0 & 0xFFFF_FFFF) as usize;
        let gen = (id.0 >> 32) as u32;
        let s = self.slots.get(slot)?;
        (s.live && s.gen == gen).then_some(slot)
    }

    /// Metadata for a live packet; `None` once the packet retired.
    pub(crate) fn get(&self, id: PacketId) -> Option<&PacketMeta> {
        self.decode(id).map(|s| &self.slots[s].meta)
    }

    /// Mutable metadata for a live packet.
    pub(crate) fn get_mut(&mut self, id: PacketId) -> Option<&mut PacketMeta> {
        self.decode(id).map(|s| &mut self.slots[s].meta)
    }

    /// Retires a packet, returning its final metadata and recycling the
    /// slot. Stale or unknown ids return `None`.
    pub(crate) fn release(&mut self, id: PacketId) -> Option<PacketMeta> {
        let slot = self.decode(id)?;
        let s = &mut self.slots[slot];
        s.live = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot as u32);
        self.live -= 1;
        Some(s.meta)
    }

    /// Number of live (in-flight) packets.
    pub(crate) fn live(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_lookup_release_roundtrip() {
        let mut slab = PacketSlab::default();
        let a = slab.alloc(SimTime::from_nanos(5));
        let b = slab.alloc(SimTime::from_nanos(6));
        assert_ne!(a, b);
        assert_eq!(slab.live(), 2);
        slab.get_mut(a).unwrap().links_crossed = 3;
        assert_eq!(slab.get(a).unwrap().links_crossed, 3);
        let meta = slab.release(a).unwrap();
        assert_eq!(meta.injected_at, SimTime::from_nanos(5));
        assert_eq!(meta.links_crossed, 3);
        assert_eq!(slab.live(), 1);
        // The released id is stale: lookups miss, double-release is a no-op.
        assert!(slab.get(a).is_none());
        assert!(slab.release(a).is_none());
        assert!(slab.get(b).is_some());
    }

    #[test]
    fn slots_recycle_with_fresh_generations() {
        let mut slab = PacketSlab::default();
        let a = slab.alloc(SimTime::ZERO);
        slab.release(a);
        let b = slab.alloc(SimTime::from_nanos(1));
        // Same slot, different generation → different id.
        assert_eq!(a.0 & 0xFFFF_FFFF, b.0 & 0xFFFF_FFFF);
        assert_ne!(a, b);
        assert!(slab.get(a).is_none());
        assert_eq!(slab.get(b).unwrap().injected_at, SimTime::from_nanos(1));
    }

    #[test]
    fn ids_are_unique_across_heavy_churn() {
        let mut slab = PacketSlab::default();
        let mut seen = std::collections::HashSet::new();
        let mut live = Vec::new();
        for round in 0..1_000u64 {
            let id = slab.alloc(SimTime::from_nanos(round));
            assert!(seen.insert(id), "id reused: {id:?}");
            live.push(id);
            if round % 3 == 0 {
                let id = live.remove(0);
                slab.release(id);
            }
        }
        assert_eq!(slab.live(), live.len());
    }
}
