//! Interconnect topologies.
//!
//! The paper simulates a two-dimensional mesh ([`Mesh2D`]) for simplicity and
//! notes that real FLASH machines use a hierarchical fat hypercube with a
//! smaller diameter. We provide a [`Hypercube`] topology to reproduce the
//! dissemination-phase scaling comparison of Figure 5.5 (the recovery
//! algorithm is topology-independent).

use crate::ids::{NodeId, RouterId};
use crate::routing::{Hop, RoutingTables};

/// A bidirectional router-to-router link in a topology description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: RouterId,
    /// The other endpoint.
    pub b: RouterId,
}

/// A static interconnect topology: routers, node attachment, links, and a
/// deadlock-free initial routing function.
///
/// All topologies in this crate attach exactly one node per router (node `i`
/// on router `i`), matching FLASH where each node contains its own network
/// interface.
pub trait Topology {
    /// Number of compute nodes (== number of routers here).
    fn num_nodes(&self) -> usize;

    /// Number of routers.
    fn num_routers(&self) -> usize {
        self.num_nodes()
    }

    /// The router a node attaches to.
    fn router_of(&self, node: NodeId) -> RouterId {
        RouterId(node.0)
    }

    /// The node attached to a router.
    fn node_of(&self, router: RouterId) -> NodeId {
        NodeId(router.0)
    }

    /// All router-to-router links.
    fn links(&self) -> Vec<LinkSpec>;

    /// Computes the deadlock-free routing tables used during normal
    /// operation (dimension-order routing for the provided topologies).
    fn initial_tables(&self) -> RoutingTables;

    /// A short human-readable topology name (e.g. `"mesh2d"`).
    fn name(&self) -> &'static str;
}

/// A `width x height` two-dimensional mesh, as simulated in the paper's
/// experiments. Router `r` sits at `(r % width, r / width)`.
///
/// Initial routing is dimension-order (X first, then Y), which is
/// deadlock-free on a mesh.
///
/// # Examples
///
/// ```
/// use flash_net::{Mesh2D, Topology};
///
/// let mesh = Mesh2D::new(4, 2);
/// assert_eq!(mesh.num_nodes(), 8);
/// assert_eq!(mesh.links().len(), 4 + 6); // vertical + horizontal links
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesh2D {
    width: usize,
    height: usize,
}

impl Mesh2D {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the node count exceeds `u16`
    /// range.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        assert!(width * height <= u16::MAX as usize, "too many nodes");
        Mesh2D { width, height }
    }

    /// Picks a roughly square mesh for `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` cannot be factored into a `w x h` grid (i.e. `n` is
    /// prime and larger than 3 would still work — any `n >= 1` works because
    /// we fall back to `n x 1`).
    pub fn roughly_square(n: usize) -> Self {
        assert!(n > 0);
        let mut best = (n, 1);
        let mut w = 1;
        while w * w <= n {
            if n.is_multiple_of(w) {
                best = (n / w, w);
            }
            w += 1;
        }
        Mesh2D::new(best.0, best.1)
    }

    /// Mesh width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The (x, y) coordinates of a router.
    pub fn coords(&self, r: RouterId) -> (usize, usize) {
        (r.index() % self.width, r.index() / self.width)
    }

    /// The router at (x, y).
    ///
    /// # Panics
    ///
    /// Panics if the coordinates lie outside the mesh.
    pub fn router_at(&self, x: usize, y: usize) -> RouterId {
        assert!(x < self.width && y < self.height, "coords out of range");
        RouterId((y * self.width + x) as u16)
    }
}

impl Topology for Mesh2D {
    fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    fn links(&self) -> Vec<LinkSpec> {
        let mut links = Vec::new();
        for y in 0..self.height {
            for x in 0..self.width {
                let here = self.router_at(x, y);
                if x + 1 < self.width {
                    links.push(LinkSpec {
                        a: here,
                        b: self.router_at(x + 1, y),
                    });
                }
                if y + 1 < self.height {
                    links.push(LinkSpec {
                        a: here,
                        b: self.router_at(x, y + 1),
                    });
                }
            }
        }
        links
    }

    fn initial_tables(&self) -> RoutingTables {
        let n = self.num_routers();
        let mut tables = RoutingTables::unreachable(n);
        for r in 0..n {
            let (x, y) = self.coords(RouterId(r as u16));
            for d in 0..n {
                let (dx, dy) = self.coords(RouterId(d as u16));
                let hop = if d == r {
                    Hop::Local
                } else if dx != x {
                    // X first.
                    let nx = if dx > x { x + 1 } else { x - 1 };
                    Hop::Toward(self.router_at(nx, y))
                } else {
                    let ny = if dy > y { y + 1 } else { y - 1 };
                    Hop::Toward(self.router_at(x, ny))
                };
                tables.set(RouterId(r as u16), RouterId(d as u16), hop);
            }
        }
        tables
    }

    fn name(&self) -> &'static str {
        "mesh2d"
    }
}

/// A binary hypercube of dimension `dim` (2^dim routers), standing in for
/// FLASH's hierarchical fat hypercube: its diameter grows as `log2(n)` rather
/// than the mesh's `O(sqrt(n))`, which is what drives the faster
/// dissemination phase in Figure 5.5.
///
/// Initial routing is e-cube (correct the lowest differing address bit
/// first), which is deadlock-free.
///
/// # Examples
///
/// ```
/// use flash_net::{Hypercube, Topology};
///
/// let cube = Hypercube::new(3);
/// assert_eq!(cube.num_nodes(), 8);
/// assert_eq!(cube.links().len(), 3 * 8 / 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hypercube {
    dim: u32,
}

impl Hypercube {
    /// Creates a hypercube with `2^dim` routers.
    ///
    /// # Panics
    ///
    /// Panics if `dim > 14` (node count would exceed `u16` range).
    pub fn new(dim: u32) -> Self {
        assert!(dim <= 14, "hypercube too large");
        Hypercube { dim }
    }

    /// Picks the smallest hypercube with at least `n` nodes.
    pub fn at_least(n: usize) -> Self {
        let mut dim = 0;
        while (1usize << dim) < n {
            dim += 1;
        }
        Hypercube::new(dim)
    }

    /// The dimension (log2 of the router count).
    pub fn dim(&self) -> u32 {
        self.dim
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1 << self.dim
    }

    fn links(&self) -> Vec<LinkSpec> {
        let n = self.num_nodes();
        let mut links = Vec::new();
        for r in 0..n {
            for bit in 0..self.dim {
                let peer = r ^ (1 << bit);
                if peer > r {
                    links.push(LinkSpec {
                        a: RouterId(r as u16),
                        b: RouterId(peer as u16),
                    });
                }
            }
        }
        links
    }

    fn initial_tables(&self) -> RoutingTables {
        let n = self.num_routers();
        let mut tables = RoutingTables::unreachable(n);
        for r in 0..n {
            for d in 0..n {
                let hop = if d == r {
                    Hop::Local
                } else {
                    let diff = (r ^ d) as u32;
                    let bit = diff.trailing_zeros();
                    Hop::Toward(RouterId((r ^ (1 << bit)) as u16))
                };
                tables.set(RouterId(r as u16), RouterId(d as u16), hop);
            }
        }
        tables
    }

    fn name(&self) -> &'static str {
        "hypercube"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_link_count() {
        // w*h mesh has (w-1)*h + w*(h-1) links.
        let m = Mesh2D::new(4, 4);
        assert_eq!(m.links().len(), 3 * 4 + 4 * 3);
        let m = Mesh2D::new(1, 1);
        assert!(m.links().is_empty());
    }

    #[test]
    fn mesh_coords_roundtrip() {
        let m = Mesh2D::new(5, 3);
        for y in 0..3 {
            for x in 0..5 {
                let r = m.router_at(x, y);
                assert_eq!(m.coords(r), (x, y));
            }
        }
    }

    #[test]
    fn roughly_square_factors() {
        assert_eq!(Mesh2D::roughly_square(16), Mesh2D::new(4, 4));
        assert_eq!(Mesh2D::roughly_square(8), Mesh2D::new(4, 2));
        assert_eq!(Mesh2D::roughly_square(128), Mesh2D::new(16, 8));
        assert_eq!(Mesh2D::roughly_square(7), Mesh2D::new(7, 1));
    }

    #[test]
    fn mesh_dimension_order_routing_reaches_everything() {
        let m = Mesh2D::new(4, 3);
        let tables = m.initial_tables();
        for s in 0..m.num_routers() {
            for d in 0..m.num_routers() {
                // Walk the tables; must arrive within diameter hops.
                let mut at = RouterId(s as u16);
                let dest = RouterId(d as u16);
                let mut hops = 0;
                loop {
                    match tables.hop(at, dest) {
                        Hop::Local => {
                            assert_eq!(at, dest);
                            break;
                        }
                        Hop::Toward(next) => {
                            at = next;
                            hops += 1;
                            assert!(hops <= 8, "routing loop {s}->{d}");
                        }
                        other => panic!("unexpected hop {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn hypercube_ecube_routing_hops_equal_hamming_distance() {
        let c = Hypercube::new(4);
        let tables = c.initial_tables();
        for s in 0..c.num_routers() {
            for d in 0..c.num_routers() {
                let mut at = RouterId(s as u16);
                let dest = RouterId(d as u16);
                let mut hops = 0u32;
                while let Hop::Toward(next) = tables.hop(at, dest) {
                    at = next;
                    hops += 1;
                    assert!(hops <= 4);
                }
                assert_eq!(at, dest);
                assert_eq!(hops, (s ^ d).count_ones());
            }
        }
    }

    #[test]
    fn node_router_mapping_is_identity() {
        let c = Hypercube::new(2);
        assert_eq!(c.router_of(NodeId(3)), RouterId(3));
        assert_eq!(c.node_of(RouterId(2)), NodeId(2));
    }

    #[test]
    fn hypercube_at_least() {
        assert_eq!(Hypercube::at_least(1).num_nodes(), 1);
        assert_eq!(Hypercube::at_least(5).num_nodes(), 8);
        assert_eq!(Hypercube::at_least(128).num_nodes(), 128);
    }
}
