//! The event taxonomy: one structured variant per instrumentation point in
//! the stack, each carrying only primitive identifiers (`u16` node ids,
//! `u8` lanes/phases, `&'static str` labels) so recording never allocates.

use std::fmt;

/// The subsystem an event was recorded from.
///
/// Each domain owns one ring-buffer shard in the
/// [`Recorder`](crate::Recorder) and can be enabled independently, so the
/// hot interconnect/controller domains stay zero-cost while the sparse
/// fault/recovery domains trace by default.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Domain {
    /// Simulation kernel (engine queue depth, budget exhaustion).
    Sim = 0,
    /// Interconnect fabric (packet lifecycle, drops, coalescing).
    Net = 1,
    /// Cache-coherence protocol (incoherence markings, denials).
    Coherence = 2,
    /// MAGIC node controller (handler dispatch and occupancy).
    Magic = 3,
    /// Machine assembly (fault injection, triggers, bus errors).
    Machine = 4,
    /// Four-phase recovery algorithm (phase transitions, barriers).
    Recovery = 5,
    /// Hive cell OS (cell state, OS recovery passes).
    Hive = 6,
    /// Campaign harness (run boundaries, invariant verdicts).
    Campaign = 7,
}

impl Domain {
    /// Number of domains (shard count).
    pub const COUNT: usize = 8;

    /// All domains, in shard order.
    pub const ALL: [Domain; Domain::COUNT] = [
        Domain::Sim,
        Domain::Net,
        Domain::Coherence,
        Domain::Magic,
        Domain::Machine,
        Domain::Recovery,
        Domain::Hive,
        Domain::Campaign,
    ];

    /// Stable lower-case label, used in rendered traces and exports.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Sim => "sim",
            Domain::Net => "net",
            Domain::Coherence => "coh",
            Domain::Magic => "magic",
            Domain::Machine => "machine",
            Domain::Recovery => "recovery",
            Domain::Hive => "hive",
            Domain::Campaign => "campaign",
        }
    }

    /// The shard index backing this domain.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The bit this domain occupies in the recorder's enable mask.
    #[inline]
    pub(crate) fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// A structured trace event.
///
/// Variants mirror the instrumentation points of the stack, bottom-up:
/// packet lifecycle in the fabric, handler dispatch on the node
/// controllers, coherence-state markings, fault injection and triggers,
/// per-node recovery-phase transitions and barrier rounds, and Hive
/// cell/OS events. Every variant is `Copy` and carries only primitive ids,
/// so the recording hot path is a mask test plus a ring-buffer push.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceEvent {
    /// A packet was accepted into the fabric's injection queue.
    PacketSent {
        /// Source node.
        src: u16,
        /// Destination node.
        dst: u16,
        /// Virtual lane index.
        lane: u8,
        /// Packet size in flits.
        flits: u32,
    },
    /// A packet reached its destination node controller.
    PacketDelivered {
        /// Destination node.
        node: u16,
        /// Virtual lane index.
        lane: u8,
        /// Links crossed en route.
        hops: u8,
        /// Whether the packet lost its data flits to a mid-link failure.
        truncated: bool,
    },
    /// The fabric discarded a packet.
    PacketDropped {
        /// Drop reason (same names as the fabric's counters).
        reason: &'static str,
    },
    /// A node controller dispatched a handler for one input packet.
    HandlerDispatch {
        /// Servicing node.
        node: u16,
        /// Handler (payload kind) label.
        handler: &'static str,
        /// Occupancy charged, in nanoseconds.
        cost_ns: u64,
    },
    /// A coherence-significant state change (incoherence marking, firewall
    /// denial, drained request, ...).
    CohTransition {
        /// Node observing the transition.
        node: u16,
        /// The cache line concerned.
        line: u64,
        /// Transition label.
        what: &'static str,
    },
    /// The injector applied a fault's physical effect.
    FaultInjected {
        /// Fault kind label (`node`, `router`, `link`, ...).
        kind: &'static str,
        /// Primary victim (first doomed node; a link fault names one
        /// endpoint router's node).
        node: u16,
    },
    /// A hardware recovery trigger fired at a node controller.
    TriggerFired {
        /// Triggering node.
        node: u16,
        /// Trigger kind label.
        trigger: &'static str,
    },
    /// A node controller raised a bus error to its processor.
    BusErrorRaised {
        /// Raising node.
        node: u16,
        /// Bus-error kind label.
        err: &'static str,
    },
    /// A node entered a recovery phase (P1–P4).
    PhaseEnter {
        /// The node.
        node: u16,
        /// Phase number, 1–4.
        phase: u8,
        /// Recovery incarnation at this node.
        incarnation: u32,
    },
    /// A node left a recovery phase (P1–P4).
    PhaseExit {
        /// The node.
        node: u16,
        /// Phase number, 1–4.
        phase: u8,
        /// Recovery incarnation at this node.
        incarnation: u32,
    },
    /// A barrier the node participates in completed a round.
    BarrierRound {
        /// The node observing completion.
        node: u16,
        /// Barrier label (`drain1`, `routes`, `flush`, ...).
        barrier: &'static str,
        /// The round's aggregated boolean result.
        ok: bool,
    },
    /// The recovery algorithm restarted with a higher incarnation.
    RecoveryRestart {
        /// The restarting node.
        node: u16,
        /// The new incarnation.
        incarnation: u32,
    },
    /// A Hive cell event (cell failure, RPC accounting, ...).
    HiveCell {
        /// The cell id.
        cell: u16,
        /// Event label.
        what: &'static str,
        /// Event-specific value.
        value: u64,
    },
    /// A Hive OS-level event (recovery pass, task reschedule, ...).
    OsEvent {
        /// Event label.
        what: &'static str,
        /// Event-specific value.
        value: u64,
    },
    /// A KV request lifecycle event at a serving shard (recorded under
    /// [`Domain::Hive`]: the KV store is a Hive service).
    KvRequest {
        /// The shard's serving node.
        node: u16,
        /// Lifecycle label (`arrivals_resolved`, `errors`, ...).
        what: &'static str,
        /// Event-specific value.
        value: u64,
    },
    /// A KV chunk placement event (failover, re-replication, loss).
    KvChunk {
        /// The chunk id.
        chunk: u16,
        /// Placement label (`failover`, `rereplicate`, `lost`, ...).
        what: &'static str,
        /// Event-specific value (usually the cell concerned).
        value: u64,
    },
    /// A free-form labelled observation.
    Note {
        /// Label.
        what: &'static str,
        /// Value.
        value: u64,
    },
}

impl TraceEvent {
    /// Stable snake-case kind label (the Chrome-trace event name for
    /// instant events).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::PacketSent { .. } => "packet_sent",
            TraceEvent::PacketDelivered { .. } => "packet_delivered",
            TraceEvent::PacketDropped { .. } => "packet_dropped",
            TraceEvent::HandlerDispatch { .. } => "handler_dispatch",
            TraceEvent::CohTransition { .. } => "coh_transition",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::TriggerFired { .. } => "trigger_fired",
            TraceEvent::BusErrorRaised { .. } => "bus_error",
            TraceEvent::PhaseEnter { .. } => "phase_enter",
            TraceEvent::PhaseExit { .. } => "phase_exit",
            TraceEvent::BarrierRound { .. } => "barrier_round",
            TraceEvent::RecoveryRestart { .. } => "recovery_restart",
            TraceEvent::HiveCell { .. } => "hive_cell",
            TraceEvent::OsEvent { .. } => "os_event",
            TraceEvent::KvRequest { .. } => "kv_request",
            TraceEvent::KvChunk { .. } => "kv_chunk",
            TraceEvent::Note { .. } => "note",
        }
    }

    /// The node this event is attributed to, if any (the Chrome-trace
    /// thread id).
    pub fn node(&self) -> Option<u16> {
        match *self {
            TraceEvent::PacketSent { src, .. } => Some(src),
            TraceEvent::PacketDelivered { node, .. }
            | TraceEvent::HandlerDispatch { node, .. }
            | TraceEvent::CohTransition { node, .. }
            | TraceEvent::FaultInjected { node, .. }
            | TraceEvent::TriggerFired { node, .. }
            | TraceEvent::BusErrorRaised { node, .. }
            | TraceEvent::PhaseEnter { node, .. }
            | TraceEvent::PhaseExit { node, .. }
            | TraceEvent::BarrierRound { node, .. }
            | TraceEvent::RecoveryRestart { node, .. }
            | TraceEvent::KvRequest { node, .. } => Some(node),
            TraceEvent::HiveCell { cell, .. } => Some(cell),
            TraceEvent::PacketDropped { .. }
            | TraceEvent::OsEvent { .. }
            | TraceEvent::KvChunk { .. }
            | TraceEvent::Note { .. } => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    /// Compact single-line rendering, stable across platforms (used by
    /// [`Recorder::render`](crate::Recorder::render) and therefore by the
    /// merged-trace hash).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::PacketSent {
                src,
                dst,
                lane,
                flits,
            } => write!(
                f,
                "packet_sent src={src} dst={dst} lane={lane} flits={flits}"
            ),
            TraceEvent::PacketDelivered {
                node,
                lane,
                hops,
                truncated,
            } => write!(
                f,
                "packet_delivered node={node} lane={lane} hops={hops} truncated={truncated}"
            ),
            TraceEvent::PacketDropped { reason } => write!(f, "packet_dropped reason={reason}"),
            TraceEvent::HandlerDispatch {
                node,
                handler,
                cost_ns,
            } => write!(
                f,
                "handler_dispatch node={node} handler={handler} cost_ns={cost_ns}"
            ),
            TraceEvent::CohTransition { node, line, what } => {
                write!(f, "coh_transition node={node} line={line:#x} what={what}")
            }
            TraceEvent::FaultInjected { kind, node } => {
                write!(f, "fault_injected kind={kind} node={node}")
            }
            TraceEvent::TriggerFired { node, trigger } => {
                write!(f, "trigger_fired node={node} trigger={trigger}")
            }
            TraceEvent::BusErrorRaised { node, err } => {
                write!(f, "bus_error node={node} err={err}")
            }
            TraceEvent::PhaseEnter {
                node,
                phase,
                incarnation,
            } => write!(
                f,
                "phase_enter node={node} phase=P{phase} inc={incarnation}"
            ),
            TraceEvent::PhaseExit {
                node,
                phase,
                incarnation,
            } => write!(f, "phase_exit node={node} phase=P{phase} inc={incarnation}"),
            TraceEvent::BarrierRound { node, barrier, ok } => {
                write!(f, "barrier_round node={node} barrier={barrier} ok={ok}")
            }
            TraceEvent::RecoveryRestart { node, incarnation } => {
                write!(f, "recovery_restart node={node} inc={incarnation}")
            }
            TraceEvent::HiveCell { cell, what, value } => {
                write!(f, "hive_cell cell={cell} what={what} value={value}")
            }
            TraceEvent::OsEvent { what, value } => write!(f, "os_event what={what} value={value}"),
            TraceEvent::KvRequest { node, what, value } => {
                write!(f, "kv_request node={node} what={what} value={value}")
            }
            TraceEvent::KvChunk { chunk, what, value } => {
                write!(f, "kv_chunk chunk={chunk} what={what} value={value}")
            }
            TraceEvent::Note { what, value } => write!(f, "note what={what} value={value}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_bits_are_distinct() {
        let mut seen = 0u8;
        for d in Domain::ALL {
            assert_eq!(seen & d.bit(), 0, "duplicate bit for {d:?}");
            seen |= d.bit();
            assert_eq!(Domain::ALL[d.index()], d);
        }
        assert_eq!(seen, 0xff);
    }

    #[test]
    fn display_is_compact_and_stable() {
        let e = TraceEvent::PhaseEnter {
            node: 3,
            phase: 2,
            incarnation: 1,
        };
        assert_eq!(e.to_string(), "phase_enter node=3 phase=P2 inc=1");
        assert_eq!(e.kind(), "phase_enter");
        assert_eq!(e.node(), Some(3));
        let d = TraceEvent::PacketDropped {
            reason: "drop_blackhole_link",
        };
        assert_eq!(d.node(), None);
        assert_eq!(d.to_string(), "packet_dropped reason=drop_blackhole_link");
    }
}
