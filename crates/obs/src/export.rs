//! Exporters: Chrome `trace_event` JSON (loadable in Perfetto or
//! `chrome://tracing`), a per-node recovery-phase timeline table, and the
//! flight-recorder tail JSON embedded in campaign post-mortems.
//!
//! All output is built with integer arithmetic and name-sorted iteration
//! only, so a given recording always serialises to the same bytes.

use crate::event::TraceEvent;
use crate::recorder::{MergedEvent, Recorder};
use std::fmt::Write;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as the microsecond `ts` field Chrome traces expect,
/// with three fixed decimal places (pure integer math — no float
/// formatting in the output path).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn phase_name(phase: u8) -> &'static str {
    match phase {
        1 => "P1",
        2 => "P2",
        3 => "P3",
        4 => "P4",
        _ => "P?",
    }
}

fn write_chrome_record(out: &mut String, e: &MergedEvent) {
    let ns = e.at.as_nanos();
    let tid = e.event.node().unwrap_or(0);
    let cat = e.domain.label();
    match e.event {
        TraceEvent::PhaseEnter {
            phase, incarnation, ..
        } => {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"{cat}\", \"ph\": \"B\", \"ts\": {}, \"pid\": 0, \"tid\": {tid}, \"args\": {{\"incarnation\": {incarnation}, \"seq\": {}}}}}",
                phase_name(phase),
                ts_us(ns),
                e.seq
            );
        }
        TraceEvent::PhaseExit {
            phase, incarnation, ..
        } => {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"{cat}\", \"ph\": \"E\", \"ts\": {}, \"pid\": 0, \"tid\": {tid}, \"args\": {{\"incarnation\": {incarnation}, \"seq\": {}}}}}",
                phase_name(phase),
                ts_us(ns),
                e.seq
            );
        }
        TraceEvent::HandlerDispatch { cost_ns, .. } => {
            // A complete event: the handler occupies the controller for
            // `cost_ns` starting at the dispatch time.
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"{cat}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": {tid}, \"args\": {{\"detail\": \"{}\", \"seq\": {}}}}}",
                e.event.kind(),
                ts_us(ns),
                ts_us(cost_ns),
                json_escape_str(&e.event.to_string()),
                e.seq
            );
        }
        _ => {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"{cat}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \"pid\": 0, \"tid\": {tid}, \"args\": {{\"detail\": \"{}\", \"seq\": {}}}}}",
                e.event.kind(),
                ts_us(ns),
                json_escape_str(&e.event.to_string()),
                e.seq
            );
        }
    }
}

/// Serialises the merged trace as Chrome `trace_event` JSON.
///
/// Recovery phases become `B`/`E` span pairs named `P1`–`P4` on thread
/// `tid = node`; handler dispatches become `X` complete events with their
/// occupancy as the duration; everything else becomes a thread-scoped
/// instant event. Load the output in Perfetto or `chrome://tracing`.
pub fn chrome_trace_json(rec: &Recorder) -> String {
    let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    let merged = rec.merged();
    for (i, e) in merged.iter().enumerate() {
        out.push_str("  ");
        write_chrome_record(&mut out, e);
        if i + 1 < merged.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// One node's row in the recovery-phase timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseRow {
    /// Latest incarnation observed for this node.
    pub incarnation: u32,
    /// Entry time (ns) per phase P1–P4, if entered.
    pub enter_ns: [Option<u64>; 4],
    /// Exit time (ns) per phase P1–P4, if exited.
    pub exit_ns: [Option<u64>; 4],
}

/// Extracts the per-node P1–P4 timeline from the merged trace, keeping
/// each node's *latest* incarnation (restarts overwrite earlier attempts,
/// which is what a recovery-time attribution wants).
pub fn phase_rows(rec: &Recorder) -> Vec<(u16, PhaseRow)> {
    let mut rows: Vec<(u16, PhaseRow)> = Vec::new();
    let row_mut = |node: u16, rows: &mut Vec<(u16, PhaseRow)>| -> usize {
        match rows.iter().position(|(n, _)| *n == node) {
            Some(i) => i,
            None => {
                rows.push((node, PhaseRow::default()));
                rows.len() - 1
            }
        }
    };
    for e in rec.merged() {
        match e.event {
            TraceEvent::PhaseEnter {
                node,
                phase: phase @ 1..=4,
                incarnation,
            } => {
                let i = row_mut(node, &mut rows);
                let row = &mut rows[i].1;
                if incarnation > row.incarnation {
                    *row = PhaseRow {
                        incarnation,
                        ..PhaseRow::default()
                    };
                }
                row.enter_ns[(phase - 1) as usize] = Some(e.at.as_nanos());
            }
            TraceEvent::PhaseExit {
                node,
                phase: phase @ 1..=4,
                incarnation,
            } => {
                let i = row_mut(node, &mut rows);
                let row = &mut rows[i].1;
                if incarnation >= row.incarnation {
                    row.incarnation = incarnation;
                    row.exit_ns[(phase - 1) as usize] = Some(e.at.as_nanos());
                }
            }
            _ => {}
        }
    }
    rows.sort_unstable_by_key(|(n, _)| *n);
    rows
}

fn fmt_opt_ns(v: Option<u64>) -> String {
    match v {
        Some(ns) => ns.to_string(),
        None => "-".to_string(),
    }
}

/// Renders the per-node recovery-phase timeline as an aligned text table
/// (entry time per phase plus the P4 exit, in simulated nanoseconds).
pub fn phase_timeline(rec: &Recorder) -> String {
    let rows = phase_rows(rec);
    let mut cells: Vec<[String; 7]> = vec![[
        "node".into(),
        "inc".into(),
        "P1_enter_ns".into(),
        "P2_enter_ns".into(),
        "P3_enter_ns".into(),
        "P4_enter_ns".into(),
        "P4_exit_ns".into(),
    ]];
    for (node, row) in &rows {
        cells.push([
            node.to_string(),
            row.incarnation.to_string(),
            fmt_opt_ns(row.enter_ns[0]),
            fmt_opt_ns(row.enter_ns[1]),
            fmt_opt_ns(row.enter_ns[2]),
            fmt_opt_ns(row.enter_ns[3]),
            fmt_opt_ns(row.exit_ns[3]),
        ]);
    }
    let mut widths = [0usize; 7];
    for row in &cells {
        for (w, c) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(c.len());
        }
    }
    let mut out = String::new();
    for row in &cells {
        for (i, (w, c)) in widths.iter().zip(row.iter()).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{c:>w$}", w = w);
        }
        out.push('\n');
    }
    out
}

/// Renders a [`flash_sim::LatencyHistogram`] as an aligned quantile table —
/// the detection-latency block of campaign result sheets. Quantiles are the
/// histogram's power-of-two bucket upper bounds, so the output is exactly
/// reproducible across hosts.
pub fn latency_summary(label: &str, h: &flash_sim::LatencyHistogram) -> String {
    if h.total() == 0 {
        return format!("{label}: no samples\n");
    }
    let mut out = format!("{label}: {} samples\n", h.total());
    for (name, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99), ("max", 1.0)] {
        let _ = writeln!(
            out,
            "  {name} <= {} ns",
            h.quantile_upper_bound(q).as_nanos()
        );
    }
    out
}

/// Serialises the last `n` merged events as a JSON array — the
/// flight-recorder tail embedded in campaign post-mortems.
pub fn tail_json(rec: &Recorder, n: usize) -> String {
    let tail = rec.tail(n);
    let mut out = String::from("[");
    for (i, e) in tail.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(
            out,
            "{sep}{{\"seq\": {}, \"t_ns\": {}, \"domain\": \"{}\", \"event\": \"{}\", \"detail\": \"{}\"}}",
            e.seq,
            e.at.as_nanos(),
            e.domain.label(),
            e.event.kind(),
            json_escape_str(&e.event.to_string())
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Domain;
    use flash_sim::SimTime;

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new();
        r.enable_all();
        r.record(
            Domain::Machine,
            SimTime::from_nanos(100),
            TraceEvent::FaultInjected {
                kind: "node",
                node: 3,
            },
        );
        r.record(
            Domain::Recovery,
            SimTime::from_nanos(250),
            TraceEvent::PhaseEnter {
                node: 0,
                phase: 1,
                incarnation: 1,
            },
        );
        r.record(
            Domain::Recovery,
            SimTime::from_nanos(900),
            TraceEvent::PhaseExit {
                node: 0,
                phase: 1,
                incarnation: 1,
            },
        );
        r.record(
            Domain::Recovery,
            SimTime::from_nanos(900),
            TraceEvent::PhaseEnter {
                node: 0,
                phase: 2,
                incarnation: 1,
            },
        );
        r
    }

    #[test]
    fn chrome_trace_has_span_pairs_and_instants() {
        let r = sample_recorder();
        let json = chrome_trace_json(&r);
        assert!(json.contains("\"ph\": \"B\""), "{json}");
        assert!(json.contains("\"ph\": \"E\""), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
        assert!(json.contains("\"name\": \"P1\""), "{json}");
        assert!(json.contains("\"ts\": 0.250"), "{json}");
        // Valid JSON shape: balanced brackets, trailing newline.
        assert!(json.starts_with('{') && json.ends_with("]}\n"));
    }

    #[test]
    fn timeline_latest_incarnation_wins() {
        let mut r = sample_recorder();
        // A restart at node 0: the earlier incarnation's entries clear.
        r.record(
            Domain::Recovery,
            SimTime::from_nanos(2_000),
            TraceEvent::PhaseEnter {
                node: 0,
                phase: 1,
                incarnation: 2,
            },
        );
        let rows = phase_rows(&r);
        assert_eq!(rows.len(), 1);
        let (node, row) = rows[0];
        assert_eq!(node, 0);
        assert_eq!(row.incarnation, 2);
        assert_eq!(row.enter_ns[0], Some(2_000));
        assert_eq!(row.enter_ns[1], None, "old incarnation must be discarded");
        let table = phase_timeline(&r);
        assert!(table.contains("P1_enter_ns"));
        assert!(table.contains("2000"));
    }

    #[test]
    fn latency_summary_reports_bucket_quantiles() {
        use flash_sim::{LatencyHistogram, SimDuration};
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 120, 4_000] {
            h.record(SimDuration::from_nanos(ns));
        }
        let s = latency_summary("detect", &h);
        assert!(s.starts_with("detect: 3 samples\n"), "{s}");
        // 100 and 120 land in [64,128) -> upper bound 127; 4000 in
        // [2048,4096) -> 4095.
        assert!(s.contains("p50 <= 127 ns"), "{s}");
        assert!(s.contains("max <= 4095 ns"), "{s}");
        assert_eq!(
            latency_summary("empty", &LatencyHistogram::new()),
            "empty: no samples\n"
        );
    }

    #[test]
    fn tail_json_is_bounded_and_escaped() {
        let r = sample_recorder();
        let json = tail_json(&r, 2);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"seq\"").count(), 2);
        assert!(json.contains("phase_enter"));
        assert_eq!(json_escape_str("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
