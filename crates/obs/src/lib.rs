//! # flash-obs — typed, deterministic observability
//!
//! The paper's evaluation (Sections 5.3–5.5) is an *attribution* story:
//! where recovery time goes, per phase and per node, as the machine
//! scales. This crate is the observability layer that makes that
//! attribution first-class across the workspace:
//!
//! * [`TraceEvent`] — a structured event taxonomy covering packet
//!   lifecycle, handler dispatch, coherence transitions, fault injection,
//!   per-node recovery phases P1–P4, barrier rounds, and Hive cell/OS
//!   events. Every variant is `Copy` and carries only primitive ids.
//! * [`Recorder`] — a sharded recorder: one ring-buffer shard per
//!   [`Domain`] (backed by the generic [`TraceBuffer`] ring re-exported
//!   from `flash-sim`) plus a global sequence counter, so the merged
//!   trace is totally ordered and bit-identical across campaign worker
//!   counts. Disabled domains cost one load + branch per record call.
//! * [`Metrics`] — counters and fixed-bucket latency histograms
//!   (handler occupancy, queue depth, per-phase latency), allocation-free
//!   on the steady-state hot path and a single branch when disabled.
//! * Exporters — [`chrome_trace_json`] (Perfetto / `chrome://tracing`),
//!   [`phase_timeline`] (the per-node P1–P4 table), and [`tail_json`]
//!   (the flight-recorder tail campaign post-mortems embed on invariant
//!   failure).
//!
//! # Examples
//!
//! ```
//! use flash_obs::{chrome_trace_json, Domain, Recorder, TraceEvent};
//! use flash_sim::SimTime;
//!
//! let mut rec = Recorder::new();
//! rec.record(
//!     Domain::Recovery,
//!     SimTime::from_nanos(250),
//!     TraceEvent::PhaseEnter { node: 0, phase: 1, incarnation: 1 },
//! );
//! rec.metrics.incr("recovery_starts");
//! let json = chrome_trace_json(&rec);
//! assert!(json.contains("\"name\": \"P1\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod export;
mod metrics;
mod recorder;

pub use event::{Domain, TraceEvent};
pub use export::{
    chrome_trace_json, json_escape_str, latency_summary, phase_rows, phase_timeline, tail_json,
    PhaseRow,
};
pub use metrics::{Metrics, Quantiles};
pub use recorder::{fnv1a, MergedEvent, Recorder, DEFAULT_SHARD_CAPACITY};

// The generic ring backend the recorder shards are built on, re-exported
// for users that need a raw typed ring.
pub use flash_sim::TraceBuffer;
