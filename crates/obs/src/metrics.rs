//! The metrics registry: named counters plus fixed-bucket latency
//! histograms, allocation-free on the steady-state hot path (names are
//! `&'static str` literals found by address comparison first) and a single
//! branch when disabled.

use flash_sim::{Counters, LatencyHistogram, SimDuration};

/// Tail-latency quantiles extracted from a fixed-bucket histogram by
/// nearest rank: each field is the top edge of the bucket containing the
/// `ceil(q * total)`-th sample, so the extraction is exact, deterministic
/// and identical across hosts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Quantiles {
    /// Number of samples the quantiles summarize.
    pub total: u64,
    /// Median upper bound, in nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile upper bound, in nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile upper bound, in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile upper bound, in nanoseconds.
    pub p999_ns: u64,
    /// Maximum sample's bucket upper bound, in nanoseconds.
    pub max_ns: u64,
}

impl Quantiles {
    /// Extracts p50/p95/p99/p999/max from a histogram. All fields are zero
    /// for an empty histogram.
    pub fn of(h: &LatencyHistogram) -> Quantiles {
        Quantiles {
            total: h.total(),
            p50_ns: h.quantile_upper_bound(0.50).as_nanos(),
            p95_ns: h.quantile_upper_bound(0.95).as_nanos(),
            p99_ns: h.quantile_upper_bound(0.99).as_nanos(),
            p999_ns: h.quantile_upper_bound(0.999).as_nanos(),
            max_ns: h.quantile_upper_bound(1.0).as_nanos(),
        }
    }
}

/// Counters and histograms recorded alongside the trace.
///
/// # Examples
///
/// ```
/// use flash_obs::Metrics;
/// use flash_sim::SimDuration;
///
/// let mut m = Metrics::new();
/// m.incr("handler_dispatches");
/// m.observe("handler_cost_ns", SimDuration::from_nanos(140));
/// assert_eq!(m.counters().get("handler_dispatches"), 1);
/// assert_eq!(m.histogram("handler_cost_ns").unwrap().total(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    enabled: bool,
    counters: Counters,
    /// Insertion-ordered; snapshots sort by name on demand.
    hists: Vec<(&'static str, LatencyHistogram)>,
}

impl Metrics {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        Metrics {
            enabled: true,
            counters: Counters::new(),
            hists: Vec::new(),
        }
    }

    /// Creates a disabled registry: every record call is one branch.
    pub fn disabled() -> Self {
        Metrics {
            enabled: false,
            counters: Counters::new(),
            hists: Vec::new(),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        if self.enabled {
            self.counters.add(name, n);
        }
    }

    /// Adds one to counter `name`.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Records a duration sample into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &'static str, d: SimDuration) {
        if self.enabled {
            self.hist_mut(name).record(d);
        }
    }

    /// Records a dimensionless count (queue depth, hop count) into
    /// histogram `name`, using the histogram's power-of-two buckets.
    #[inline]
    pub fn observe_count(&mut self, name: &'static str, value: u64) {
        self.observe(name, SimDuration::from_nanos(value));
    }

    fn hist_mut(&mut self, name: &'static str) -> &mut LatencyHistogram {
        // Address comparison first: the same call site passes the same
        // literal, so the steady state never allocates or compares bytes.
        if let Some(i) = self.hists.iter().position(|e| std::ptr::eq(e.0, name)) {
            return &mut self.hists[i].1;
        }
        if let Some(i) = self.hists.iter().position(|e| e.0 == name) {
            return &mut self.hists[i].1;
        }
        self.hists.push((name, LatencyHistogram::new()));
        &mut self.hists.last_mut().expect("just pushed").1
    }

    /// The counter set.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable access to the counter set (for merging foreign counters in).
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.hists.iter().find(|e| e.0 == name).map(|e| &e.1)
    }

    /// Iterates over all (name, histogram) pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LatencyHistogram)> {
        let mut sorted: Vec<_> = self.hists.iter().map(|e| (e.0, &e.1)).collect();
        sorted.sort_unstable_by_key(|e| e.0);
        sorted.into_iter()
    }

    /// Nearest-rank tail quantiles (p50/p95/p99/p999/max) for histogram
    /// `name`, or `None` if it was never recorded.
    pub fn quantiles(&self, name: &str) -> Option<Quantiles> {
        self.histogram(name).map(Quantiles::of)
    }

    /// Merges a foreign histogram into histogram `name`, bucket-wise.
    /// Used to fold shard- or workload-local histograms into the machine's
    /// registry at collection time.
    pub fn merge_histogram(&mut self, name: &'static str, h: &LatencyHistogram) {
        if self.enabled {
            self.hist_mut(name).merge(h);
        }
    }

    /// Merges another registry's counters into this one (summing).
    pub fn merge_counters(&mut self, other: &Metrics) {
        self.counters.merge(&other.counters);
    }

    /// A deterministic JSON snapshot: name-sorted counters, plus per
    /// histogram the total and p50/p90/p95/p99/p999/max upper bounds in
    /// nanoseconds.
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {v}", crate::json_escape_str(k));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (k, h)) in self.histograms().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let q = Quantiles::of(h);
            let _ = write!(
                out,
                "{sep}\"{}\": {{\"total\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}",
                crate::json_escape_str(k),
                q.total,
                q.p50_ns,
                h.quantile_upper_bound(0.90).as_nanos(),
                q.p95_ns,
                q.p99_ns,
                q.p999_ns,
                q.max_ns,
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_record_nothing() {
        let mut m = Metrics::disabled();
        m.incr("x");
        m.observe("h", SimDuration::from_nanos(5));
        assert_eq!(m.counters().get("x"), 0);
        assert!(m.histogram("h").is_none());
        m.set_enabled(true);
        m.incr("x");
        assert_eq!(m.counters().get("x"), 1);
    }

    #[test]
    fn histograms_found_by_name_across_addresses() {
        let mut m = Metrics::new();
        m.observe_count("depth", 4);
        // The same name from a runtime string (different address) must hit
        // the same histogram via the content fallback.
        let name: &'static str = "depth";
        m.observe_count(name, 8);
        assert_eq!(m.histogram("depth").unwrap().total(), 2);
        assert_eq!(m.histograms().count(), 1);
    }

    #[test]
    fn quantiles_use_nearest_rank_over_buckets() {
        let mut m = Metrics::new();
        // 999 fast samples in [64,128) and one slow outlier in
        // [1048576,2097152): p50/p95/p99 sit in the fast bucket (nearest
        // rank ceil(q*1000) <= 999), while p999 (rank 999) is still fast
        // and max is the outlier's bucket edge.
        for _ in 0..999 {
            m.observe("req", SimDuration::from_nanos(100));
        }
        m.observe("req", SimDuration::from_nanos(1_500_000));
        let q = m.quantiles("req").expect("histogram exists");
        assert_eq!(q.total, 1000);
        assert_eq!(q.p50_ns, 127);
        assert_eq!(q.p95_ns, 127);
        assert_eq!(q.p99_ns, 127);
        assert_eq!(q.p999_ns, 127);
        assert_eq!(q.max_ns, 2_097_151);
        assert!(m.quantiles("never_recorded").is_none());
    }

    #[test]
    fn quantiles_p999_catches_the_tail() {
        let mut m = Metrics::new();
        // 998 fast + 2 slow: rank ceil(0.999*1000) = 999 lands on the
        // first slow sample, so p999 must report the slow bucket.
        for _ in 0..998 {
            m.observe("req", SimDuration::from_nanos(100));
        }
        m.observe("req", SimDuration::from_nanos(1_500_000));
        m.observe("req", SimDuration::from_nanos(1_500_000));
        let q = m.quantiles("req").expect("histogram exists");
        assert_eq!(q.p99_ns, 127);
        assert_eq!(q.p999_ns, 2_097_151);
        assert_eq!(q.max_ns, 2_097_151);
    }

    #[test]
    fn merge_histogram_folds_foreign_samples_in() {
        use flash_sim::LatencyHistogram;
        let mut local = LatencyHistogram::new();
        local.record(SimDuration::from_nanos(100));
        local.record(SimDuration::from_nanos(5_000));
        let mut m = Metrics::new();
        m.observe("req", SimDuration::from_nanos(100));
        m.merge_histogram("req", &local);
        assert_eq!(m.histogram("req").unwrap().total(), 3);
        // A disabled registry ignores merges like any other record call.
        let mut off = Metrics::disabled();
        off.merge_histogram("req", &local);
        assert!(off.histogram("req").is_none());
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        m.observe("lat", SimDuration::from_nanos(100));
        let a = m.snapshot_json();
        let b = m.snapshot_json();
        assert_eq!(a, b);
        let alpha = a.find("alpha").unwrap();
        let zeta = a.find("zeta").unwrap();
        assert!(alpha < zeta, "counters must be name-sorted: {a}");
        assert!(a.contains("\"total\": 1"), "{a}");
    }

    /// Cross-check pinning [`Quantiles::of`] to the one canonical
    /// nearest-rank implementation (`LatencyHistogram::quantile_upper_bound`
    /// in `flash-sim`): for random sample sets, every extracted field must
    /// equal an independent from-scratch nearest-rank-over-buckets
    /// computation. If either side ever grows its own variant of the bucket
    /// math, the KV SLO sheets and the sim-side stats drift apart — this
    /// test is the tripwire.
    #[test]
    fn quantiles_match_independent_nearest_rank_reference() {
        use flash_sim::DetRng;

        // From-scratch reference: bucket i covers [2^i, 2^(i+1)) ns with
        // bucket 0 covering [0,2); the q-quantile upper bound is the top
        // edge of the bucket holding the ceil(q*total)-th sample.
        fn reference(samples: &[u64], q: f64) -> u64 {
            if samples.is_empty() {
                return 0;
            }
            let mut buckets = [0u64; 64];
            for &ns in samples {
                let b = if ns < 2 {
                    0
                } else {
                    63 - ns.leading_zeros() as usize
                };
                buckets[b] += 1;
            }
            let target = ((samples.len() as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
            let mut seen = 0;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= target {
                    return if i >= 63 {
                        u64::MAX
                    } else {
                        (1u64 << (i + 1)) - 1
                    };
                }
            }
            unreachable!("total > 0 but no bucket reached the target rank")
        }

        let mut rng = DetRng::new(0x51ab);
        for case in 0..40u64 {
            let n = rng.below(300);
            let mut h = LatencyHistogram::new();
            let mut samples = Vec::new();
            for _ in 0..n {
                // Spread across the full bucket range, including 0 and the
                // saturating top bucket.
                let ns = match rng.below(4) {
                    0 => rng.below(4),
                    1 => rng.below(5_000),
                    2 => rng.below(10_000_000_000),
                    _ => u64::MAX - rng.below(1_000),
                };
                samples.push(ns);
                h.record(SimDuration::from_nanos(ns));
            }
            let got = Quantiles::of(&h);
            assert_eq!(got.total, n, "case {case}");
            for (field, q) in [
                (got.p50_ns, 0.50),
                (got.p95_ns, 0.95),
                (got.p99_ns, 0.99),
                (got.p999_ns, 0.999),
                (got.max_ns, 1.0),
            ] {
                assert_eq!(field, reference(&samples, q), "case {case} q={q}");
                // And the canonical implementation both sides share:
                assert_eq!(
                    field,
                    h.quantile_upper_bound(q).as_nanos(),
                    "case {case} q={q}: Quantiles::of drifted from the \
                     canonical quantile_upper_bound"
                );
            }
        }
    }
}
