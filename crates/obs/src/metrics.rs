//! The metrics registry: named counters plus fixed-bucket latency
//! histograms, allocation-free on the steady-state hot path (names are
//! `&'static str` literals found by address comparison first) and a single
//! branch when disabled.

use flash_sim::{Counters, LatencyHistogram, SimDuration};

/// Counters and histograms recorded alongside the trace.
///
/// # Examples
///
/// ```
/// use flash_obs::Metrics;
/// use flash_sim::SimDuration;
///
/// let mut m = Metrics::new();
/// m.incr("handler_dispatches");
/// m.observe("handler_cost_ns", SimDuration::from_nanos(140));
/// assert_eq!(m.counters().get("handler_dispatches"), 1);
/// assert_eq!(m.histogram("handler_cost_ns").unwrap().total(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    enabled: bool,
    counters: Counters,
    /// Insertion-ordered; snapshots sort by name on demand.
    hists: Vec<(&'static str, LatencyHistogram)>,
}

impl Metrics {
    /// Creates an enabled, empty registry.
    pub fn new() -> Self {
        Metrics {
            enabled: true,
            counters: Counters::new(),
            hists: Vec::new(),
        }
    }

    /// Creates a disabled registry: every record call is one branch.
    pub fn disabled() -> Self {
        Metrics {
            enabled: false,
            counters: Counters::new(),
            hists: Vec::new(),
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to counter `name`.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        if self.enabled {
            self.counters.add(name, n);
        }
    }

    /// Adds one to counter `name`.
    #[inline]
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Records a duration sample into histogram `name`.
    #[inline]
    pub fn observe(&mut self, name: &'static str, d: SimDuration) {
        if self.enabled {
            self.hist_mut(name).record(d);
        }
    }

    /// Records a dimensionless count (queue depth, hop count) into
    /// histogram `name`, using the histogram's power-of-two buckets.
    #[inline]
    pub fn observe_count(&mut self, name: &'static str, value: u64) {
        self.observe(name, SimDuration::from_nanos(value));
    }

    fn hist_mut(&mut self, name: &'static str) -> &mut LatencyHistogram {
        // Address comparison first: the same call site passes the same
        // literal, so the steady state never allocates or compares bytes.
        if let Some(i) = self.hists.iter().position(|e| std::ptr::eq(e.0, name)) {
            return &mut self.hists[i].1;
        }
        if let Some(i) = self.hists.iter().position(|e| e.0 == name) {
            return &mut self.hists[i].1;
        }
        self.hists.push((name, LatencyHistogram::new()));
        &mut self.hists.last_mut().expect("just pushed").1
    }

    /// The counter set.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable access to the counter set (for merging foreign counters in).
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.hists.iter().find(|e| e.0 == name).map(|e| &e.1)
    }

    /// Iterates over all (name, histogram) pairs in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LatencyHistogram)> {
        let mut sorted: Vec<_> = self.hists.iter().map(|e| (e.0, &e.1)).collect();
        sorted.sort_unstable_by_key(|e| e.0);
        sorted.into_iter()
    }

    /// Merges another registry into this one (summing counters; histogram
    /// totals are *not* mergeable bucket-wise, so foreign histograms are
    /// appended only when absent here).
    pub fn merge_counters(&mut self, other: &Metrics) {
        self.counters.merge(&other.counters);
    }

    /// A deterministic JSON snapshot: name-sorted counters, plus per
    /// histogram the total and p50/p90/p99/max upper bounds in
    /// nanoseconds.
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(out, "{sep}\"{}\": {v}", crate::json_escape_str(k));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (k, h)) in self.histograms().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            let _ = write!(
                out,
                "{sep}\"{}\": {{\"total\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                crate::json_escape_str(k),
                h.total(),
                h.quantile_upper_bound(0.50).as_nanos(),
                h.quantile_upper_bound(0.90).as_nanos(),
                h.quantile_upper_bound(0.99).as_nanos(),
                h.quantile_upper_bound(1.0).as_nanos(),
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_record_nothing() {
        let mut m = Metrics::disabled();
        m.incr("x");
        m.observe("h", SimDuration::from_nanos(5));
        assert_eq!(m.counters().get("x"), 0);
        assert!(m.histogram("h").is_none());
        m.set_enabled(true);
        m.incr("x");
        assert_eq!(m.counters().get("x"), 1);
    }

    #[test]
    fn histograms_found_by_name_across_addresses() {
        let mut m = Metrics::new();
        m.observe_count("depth", 4);
        // The same name from a runtime string (different address) must hit
        // the same histogram via the content fallback.
        let name: &'static str = "depth";
        m.observe_count(name, 8);
        assert_eq!(m.histogram("depth").unwrap().total(), 2);
        assert_eq!(m.histograms().count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let mut m = Metrics::new();
        m.incr("zeta");
        m.incr("alpha");
        m.observe("lat", SimDuration::from_nanos(100));
        let a = m.snapshot_json();
        let b = m.snapshot_json();
        assert_eq!(a, b);
        let alpha = a.find("alpha").unwrap();
        let zeta = a.find("zeta").unwrap();
        assert!(alpha < zeta, "counters must be name-sorted: {a}");
        assert!(a.contains("\"total\": 1"), "{a}");
    }
}
