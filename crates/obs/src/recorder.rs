//! The sharded recorder: one ring-buffer shard per [`Domain`], a global
//! sequence counter stamped on every record, and a per-domain enable mask
//! so hot domains cost one branch when off.

use crate::event::{Domain, TraceEvent};
use crate::metrics::Metrics;
use flash_sim::{SimTime, TraceBuffer};

/// A fully ordered record from the merged trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergedEvent {
    /// Global sequence number (total order across all shards).
    pub seq: u64,
    /// Simulated time of the record.
    pub at: SimTime,
    /// Originating domain.
    pub domain: Domain,
    /// The event.
    pub event: TraceEvent,
}

/// The sharded trace recorder plus its metrics registry.
///
/// Recording is deterministic: events carry a global sequence number
/// assigned in dispatch order, so [`Recorder::merged`] yields one total
/// order whatever the shard layout — and, because simulation dispatch
/// order is itself deterministic, the merged trace is bit-identical
/// across campaign worker counts.
///
/// The default configuration mirrors the old sparse machine trace: the
/// low-rate domains ([`Domain::Machine`], [`Domain::Recovery`],
/// [`Domain::Hive`], [`Domain::Campaign`]) record, the high-rate domains
/// ([`Domain::Net`], [`Domain::Coherence`], [`Domain::Magic`],
/// [`Domain::Sim`]) are off. A disabled domain costs one load + branch per
/// record call.
///
/// # Examples
///
/// ```
/// use flash_obs::{Domain, Recorder, TraceEvent};
/// use flash_sim::SimTime;
///
/// let mut rec = Recorder::new();
/// rec.record(
///     Domain::Machine,
///     SimTime::from_nanos(10),
///     TraceEvent::FaultInjected { kind: "node", node: 3 },
/// );
/// assert_eq!(rec.len(), 1);
/// assert!(rec.render().contains("fault_injected kind=node node=3"));
/// ```
#[derive(Clone, Debug)]
pub struct Recorder {
    shards: [TraceBuffer<(u64, TraceEvent)>; Domain::COUNT],
    next_seq: u64,
    mask: u8,
    /// The metrics registry riding along with the trace.
    pub metrics: Metrics,
}

/// Default per-shard ring capacity.
pub const DEFAULT_SHARD_CAPACITY: usize = 512;

/// The default domain-enable mask: sparse domains on, hot domains off.
fn default_mask() -> u8 {
    Domain::Machine.bit() | Domain::Recovery.bit() | Domain::Hive.bit() | Domain::Campaign.bit()
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates a recorder with the default mask, default shard capacity
    /// and metrics enabled.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// Creates a recorder with the default mask and the given per-shard
    /// ring capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            shards: std::array::from_fn(|_| TraceBuffer::new(capacity)),
            next_seq: 0,
            mask: default_mask(),
            metrics: Metrics::new(),
        }
    }

    /// Creates a fully disabled recorder: every record call is one load +
    /// branch, metrics off.
    pub fn disabled() -> Self {
        Recorder {
            shards: std::array::from_fn(|_| TraceBuffer::disabled()),
            next_seq: 0,
            mask: 0,
            metrics: Metrics::disabled(),
        }
    }

    /// Enables every domain (and metrics) — used by trace-dump tooling.
    pub fn enable_all(&mut self) {
        self.mask = 0xff;
        for s in &mut self.shards {
            s.set_enabled(true);
        }
        self.metrics.set_enabled(true);
    }

    /// Enables or disables one domain.
    pub fn set_domain_enabled(&mut self, domain: Domain, enabled: bool) {
        if enabled {
            self.mask |= domain.bit();
            self.shards[domain.index()].set_enabled(true);
        } else {
            self.mask &= !domain.bit();
        }
    }

    /// Whether a domain records.
    pub fn domain_enabled(&self, domain: Domain) -> bool {
        self.mask & domain.bit() != 0
    }

    /// Whether any domain records.
    pub fn any_enabled(&self) -> bool {
        self.mask != 0
    }

    /// Records one event into the domain's shard, stamping the global
    /// sequence number. Disabled domains return after one branch.
    #[inline]
    pub fn record(&mut self, domain: Domain, at: SimTime, event: TraceEvent) {
        if self.mask & domain.bit() == 0 {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shards[domain.index()].record(at, (seq, event));
    }

    /// Direct access to one domain's shard.
    pub fn shard(&self, domain: Domain) -> &TraceBuffer<(u64, TraceEvent)> {
        &self.shards[domain.index()]
    }

    /// Total retained records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records evicted across all shards (ring overflow).
    pub fn dropped_total(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped()).sum()
    }

    /// Global sequence numbers issued so far (recorded + evicted).
    pub fn seq_issued(&self) -> u64 {
        self.next_seq
    }

    /// Clears all shards (capacity, enablement and the sequence counter
    /// are preserved — a cleared recorder keeps its total order).
    pub fn clear(&mut self) {
        for s in &mut self.shards {
            s.clear();
        }
    }

    /// Creates an empty recorder with this one's configuration: the same
    /// domain mask, per-shard ring capacities and enablement, and metrics
    /// enablement — but no records, metrics at zero, and the sequence
    /// counter reset.
    ///
    /// This is the seam for intra-run sharding: each region replica gets a
    /// `like()` copy of the run's recorder, records its own shard-local
    /// slice of the trace, and [`Recorder::absorb`] folds the replicas
    /// back in.
    pub fn like(&self) -> Recorder {
        let mut metrics = if self.metrics.is_enabled() {
            Metrics::new()
        } else {
            Metrics::disabled()
        };
        metrics.set_enabled(self.metrics.is_enabled());
        Recorder {
            shards: std::array::from_fn(|i| {
                let mut s = TraceBuffer::new(self.shards[i].capacity());
                s.set_enabled(self.shards[i].is_enabled());
                s
            }),
            next_seq: 0,
            mask: self.mask,
            metrics,
        }
    }

    /// Folds region-replica recorders (from [`Recorder::like`]) back into
    /// this one.
    ///
    /// Records are interleaved deterministically by `(time, region index,
    /// replica-local sequence)` and re-stamped with this recorder's global
    /// sequence counter, so the merged order depends only on what each
    /// replica recorded — not on worker scheduling. Replica ring evictions
    /// are carried into this recorder's drop accounting, and replica
    /// metrics (counters and histograms) are added in.
    ///
    /// The `(time, region, seq)` key is the same tie-break shape as the
    /// sharded event queues' `(time, shard, seq)` pop order, so a trace
    /// folded from N replicas hashes identically for every worker count.
    pub fn absorb(&mut self, parts: &[Recorder]) {
        let total: usize = parts.iter().map(|p| p.len()).sum();
        let mut all: Vec<(SimTime, usize, u64, Domain, TraceEvent)> = Vec::with_capacity(total);
        for (region, part) in parts.iter().enumerate() {
            for d in Domain::ALL {
                let shard = &part.shards[d.index()];
                self.shards[d.index()].add_dropped(shard.dropped());
                for &(at, (seq, event)) in shard.iter() {
                    all.push((at, region, seq, d, event));
                }
            }
            self.metrics.merge_counters(&part.metrics);
            for (name, h) in part.metrics.histograms() {
                self.metrics.merge_histogram(name, h);
            }
        }
        all.sort_unstable_by_key(|&(at, region, seq, _, _)| (at, region, seq));
        for (at, _, _, d, event) in all {
            self.record(d, at, event);
        }
    }

    /// The merged trace: all retained records across shards, in global
    /// sequence order (a total order).
    pub fn merged(&self) -> Vec<MergedEvent> {
        let mut all: Vec<MergedEvent> = Vec::with_capacity(self.len());
        for d in Domain::ALL {
            for &(at, (seq, event)) in self.shards[d.index()].iter() {
                all.push(MergedEvent {
                    seq,
                    at,
                    domain: d,
                    event,
                });
            }
        }
        all.sort_unstable_by_key(|e| e.seq);
        all
    }

    /// The last `n` records of the merged trace (the flight-recorder
    /// tail).
    pub fn tail(&self, n: usize) -> Vec<MergedEvent> {
        let mut all = self.merged();
        let start = all.len().saturating_sub(n);
        all.drain(..start);
        all
    }

    /// Renders the merged trace, one record per line, for failure
    /// reports. Byte-identical for identical recordings.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let dropped = self.dropped_total();
        if dropped > 0 {
            let _ = writeln!(out, "... {dropped} earlier records dropped ...");
        }
        for e in self.merged() {
            let _ = writeln!(
                out,
                "[{}] #{} {}: {}",
                e.at,
                e.seq,
                e.domain.label(),
                e.event
            );
        }
        out
    }

    /// FNV-1a hash of the rendered merged trace. Two recorders hash equal
    /// iff their merged traces are byte-identical, so campaign runs can
    /// assert cross-worker-count determinism cheaply.
    pub fn merged_hash(&self) -> u64 {
        fnv1a(self.render().as_bytes())
    }
}

/// FNV-1a, 64-bit: a stable, dependency-free content hash (unlike
/// `DefaultHasher`, its algorithm is pinned).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::DetRng;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::Note {
            what: "n",
            value: i,
        }
    }

    #[test]
    fn default_mask_traces_sparse_domains_only() {
        let mut r = Recorder::new();
        r.record(Domain::Net, SimTime::ZERO, ev(1));
        r.record(Domain::Magic, SimTime::ZERO, ev(2));
        assert!(r.is_empty(), "hot domains are off by default");
        r.record(Domain::Machine, SimTime::ZERO, ev(3));
        r.record(Domain::Recovery, SimTime::ZERO, ev(4));
        assert_eq!(r.len(), 2);
        // Sequence numbers are only issued for recorded events, so
        // disabled domains cannot perturb the merged order.
        assert_eq!(r.seq_issued(), 2);
    }

    #[test]
    fn merged_is_in_global_sequence_order() {
        let mut r = Recorder::new();
        r.enable_all();
        r.record(Domain::Net, SimTime::from_nanos(5), ev(0));
        r.record(Domain::Machine, SimTime::from_nanos(5), ev(1));
        r.record(Domain::Net, SimTime::from_nanos(6), ev(2));
        let merged = r.merged();
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(merged[1].domain, Domain::Machine);
        assert_eq!(r.tail(2).len(), 2);
        assert_eq!(r.tail(2)[0].seq, 1);
        assert_eq!(r.tail(100).len(), 3);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = Recorder::disabled();
        for d in Domain::ALL {
            r.record(d, SimTime::ZERO, ev(9));
        }
        assert!(r.is_empty());
        assert!(!r.any_enabled());
        assert_eq!(r.seq_issued(), 0);
        assert_eq!(r.render(), "");
        assert!(!r.metrics.is_enabled());
    }

    #[test]
    fn render_hash_detects_any_difference() {
        let mut a = Recorder::new();
        let mut b = Recorder::new();
        for i in 0..10 {
            a.record(Domain::Machine, SimTime::from_nanos(i), ev(i));
            b.record(Domain::Machine, SimTime::from_nanos(i), ev(i));
        }
        assert_eq!(a.merged_hash(), b.merged_hash());
        b.record(Domain::Recovery, SimTime::from_nanos(10), ev(10));
        assert_ne!(a.merged_hash(), b.merged_hash());
    }

    /// `like()` clones configuration but not contents; `absorb()` merges
    /// replica recorders in a `(time, region, local seq)` order that is
    /// independent of how the replicas were split up.
    #[test]
    fn like_and_absorb_fold_replicas_deterministically() {
        use flash_sim::SimDuration;

        let mut base = Recorder::new();
        base.record(Domain::Machine, SimTime::from_nanos(1), ev(100));

        // Replica configuration matches; state is empty.
        let rep = base.like();
        assert!(rep.is_empty());
        assert_eq!(rep.seq_issued(), 0);
        assert!(rep.domain_enabled(Domain::Machine));
        assert!(!rep.domain_enabled(Domain::Net));
        assert!(rep.metrics.is_enabled());

        // Two replicas record interleaved-in-time events plus metrics.
        let mut a = base.like();
        let mut b = base.like();
        a.record(Domain::Machine, SimTime::from_nanos(5), ev(0));
        a.record(Domain::Recovery, SimTime::from_nanos(9), ev(1));
        b.record(Domain::Machine, SimTime::from_nanos(5), ev(2));
        b.record(Domain::Machine, SimTime::from_nanos(7), ev(3));
        a.metrics.incr("replica_events");
        b.metrics.add("replica_events", 2);
        a.metrics.observe("lat", SimDuration::from_nanos(10));
        b.metrics.observe("lat", SimDuration::from_nanos(30));

        let mut folded = base.clone();
        folded.absorb(&[a, b]);

        // Ties at t=5 break by region index, then time order resumes.
        let vals: Vec<u64> = folded
            .merged()
            .iter()
            .map(|e| match e.event {
                TraceEvent::Note { value, .. } => value,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(vals, vec![100, 0, 2, 3, 1]);
        assert_eq!(folded.seq_issued(), 5);
        assert_eq!(folded.metrics.counters().get("replica_events"), 3);
        assert_eq!(folded.metrics.histogram("lat").map(|h| h.total()), Some(2));
    }

    /// Replica ring evictions survive the fold as drop accounting.
    #[test]
    fn absorb_carries_replica_drops() {
        let base = Recorder::with_capacity(2);
        let mut a = base.like();
        for i in 0..5 {
            a.record(Domain::Machine, SimTime::from_nanos(i), ev(i));
        }
        assert_eq!(a.dropped_total(), 3);
        let mut folded = base.clone();
        folded.absorb(&[a]);
        assert_eq!(folded.len(), 2);
        assert_eq!(folded.dropped_total(), 3);
    }

    /// Property: for random interleavings, each shard keeps exactly the
    /// newest `capacity` of its records and accounts for the rest in
    /// `dropped`, and the merged trace stays sequence-sorted.
    #[test]
    fn ring_eviction_property() {
        let mut rng = DetRng::new(0xdecade);
        for case in 0..50u64 {
            let cap = 1 + rng.below(16) as usize;
            let mut r = Recorder::with_capacity(cap);
            r.enable_all();
            let n = rng.below(200);
            let mut per_domain = [0u64; Domain::COUNT];
            for i in 0..n {
                let d = Domain::ALL[rng.below(Domain::COUNT as u64) as usize];
                per_domain[d.index()] += 1;
                r.record(d, SimTime::from_nanos(i), ev(i));
            }
            let mut expect_dropped = 0;
            for d in Domain::ALL {
                let recorded = per_domain[d.index()];
                let retained = recorded.min(cap as u64);
                assert_eq!(
                    r.shard(d).len() as u64,
                    retained,
                    "case {case}: domain {d:?} cap {cap}"
                );
                expect_dropped += recorded - retained;
            }
            assert_eq!(r.dropped_total(), expect_dropped, "case {case}");
            assert_eq!(r.seq_issued(), n);
            let merged = r.merged();
            assert!(merged.windows(2).all(|w| w[0].seq < w[1].seq));
        }
    }
}
