//! Golden-file test for the Chrome `trace_event` exporter: the serialized
//! bytes for a fixed recording are pinned, so any formatting drift (field
//! order, timestamp rendering, escaping) shows up as a reviewable diff of
//! `tests/golden/chrome_trace.trace.json` rather than a silent change to
//! every trace consumers have saved.
//!
//! To bless an intentional format change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p flash-obs --test golden_chrome_trace
//! ```

use flash_obs::{chrome_trace_json, phase_timeline, Domain, Recorder, TraceEvent};
use flash_sim::SimTime;

/// One fixed recording exercising every export shape: span pairs (phase
/// enter/exit), complete events (handler dispatch with duration), and
/// instant events (everything else), across several domains and nodes.
fn golden_recorder() -> Recorder {
    let mut r = Recorder::new();
    r.enable_all();
    let evs: [(Domain, u64, TraceEvent); 14] = [
        (
            Domain::Net,
            10,
            TraceEvent::PacketSent {
                src: 0,
                dst: 3,
                lane: 1,
                flits: 9,
            },
        ),
        (
            Domain::Magic,
            40,
            TraceEvent::HandlerDispatch {
                node: 3,
                handler: "get",
                cost_ns: 120,
            },
        ),
        (
            Domain::Net,
            55,
            TraceEvent::PacketDelivered {
                node: 3,
                lane: 1,
                hops: 2,
                truncated: false,
            },
        ),
        (
            Domain::Machine,
            100,
            TraceEvent::FaultInjected {
                kind: "node",
                node: 3,
            },
        ),
        (
            Domain::Net,
            130,
            TraceEvent::PacketDropped {
                reason: "drop_dead_router",
            },
        ),
        (
            Domain::Machine,
            180,
            TraceEvent::TriggerFired {
                node: 0,
                trigger: "mem_op_timeout",
            },
        ),
        (
            Domain::Recovery,
            250,
            TraceEvent::PhaseEnter {
                node: 0,
                phase: 1,
                incarnation: 1,
            },
        ),
        (
            Domain::Coherence,
            300,
            TraceEvent::CohTransition {
                node: 0,
                line: 0x2a40,
                what: "marked_incoherent",
            },
        ),
        (
            Domain::Recovery,
            700,
            TraceEvent::BarrierRound {
                node: 0,
                barrier: "drain1",
                ok: true,
            },
        ),
        (
            Domain::Recovery,
            900,
            TraceEvent::PhaseExit {
                node: 0,
                phase: 1,
                incarnation: 1,
            },
        ),
        (
            Domain::Recovery,
            900,
            TraceEvent::PhaseEnter {
                node: 0,
                phase: 2,
                incarnation: 1,
            },
        ),
        (
            Domain::Machine,
            1_100,
            TraceEvent::BusErrorRaised {
                node: 2,
                err: "incoherent_line",
            },
        ),
        (
            Domain::Hive,
            1_500,
            TraceEvent::HiveCell {
                cell: 1,
                what: "cell_failed",
                value: 4,
            },
        ),
        (
            Domain::Hive,
            2_000,
            TraceEvent::OsEvent {
                what: "os_recover_lines",
                value: 17,
            },
        ),
    ];
    for (domain, at, ev) in evs {
        r.record(domain, SimTime::from_nanos(at), ev);
    }
    r
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden file; if intentional, bless with UPDATE_GOLDEN=1"
    );
}

#[test]
fn chrome_trace_export_matches_golden() {
    let r = golden_recorder();
    check_golden("chrome_trace.trace.json", &chrome_trace_json(&r));
}

#[test]
fn phase_timeline_matches_golden() {
    let r = golden_recorder();
    check_golden("phase_timeline.txt", &phase_timeline(&r));
}

#[test]
fn golden_trace_parses_as_chrome_trace_shape() {
    // Independent of the byte-level pin: the export must keep the
    // top-level Chrome trace structure and one record per event.
    let r = golden_recorder();
    let json = chrome_trace_json(&r);
    assert!(json.starts_with("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n"));
    assert!(json.ends_with("]}\n"));
    assert_eq!(json.matches("\"ph\": ").count(), r.merged().len());
    assert_eq!(json.matches("\"ph\": \"B\"").count(), 2);
    assert_eq!(json.matches("\"ph\": \"E\"").count(), 1);
    assert_eq!(json.matches("\"ph\": \"X\"").count(), 1);
}
