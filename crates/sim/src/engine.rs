//! The simulation engine: an event loop over an [`EventQueue`].
//!
//! The engine is generic over the event type `E` and a *world* — the mutable
//! simulation state that knows how to dispatch each event. Subsystems
//! (interconnect, node controllers, recovery controllers) hand new events to
//! the [`Scheduler`] passed into [`World::dispatch`].

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Simulation state that can dispatch events of type `Ev`.
///
/// Implementors are the top-level machine models; each event delivered by the
/// engine is handed to [`World::dispatch`] together with a [`Scheduler`] used
/// to schedule follow-up events.
pub trait World {
    /// The event type driving this world.
    type Ev;

    /// Handles one event occurring at time `sched.now()`.
    fn dispatch(&mut self, ev: Self::Ev, sched: &mut Scheduler<'_, Self::Ev>);
}

/// Interface handed to [`World::dispatch`] for scheduling follow-up events.
#[allow(missing_debug_implementations)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
    clamped: &'a mut u64,
}

impl<'a, E> Scheduler<'a, E> {
    /// Builds a scheduler over an externally owned queue (the per-shard
    /// executor path; the engine constructs its own inline).
    pub(crate) fn over(
        now: SimTime,
        queue: &'a mut EventQueue<E>,
        stop_requested: &'a mut bool,
        clamped: &'a mut u64,
    ) -> Self {
        Scheduler {
            now,
            queue,
            stop_requested,
            clamped,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `ev` at absolute time `at`.
    ///
    /// A time preceding the current instant is clamped to `now` (the event
    /// still runs, after everything already queued for this instant) and
    /// counted in [`Engine::clamped_schedules`]; behaviour is identical in
    /// debug and release builds.
    pub fn at(&mut self, at: SimTime, ev: E) {
        if at < self.now {
            *self.clamped += 1;
        }
        self.queue.push(at.max(self.now), ev);
    }

    /// Schedules `ev` to occur `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, ev: E) {
        self.queue.push(self.now + delay, ev);
    }

    /// Schedules `ev` at the current time (processed after all events already
    /// queued for this instant, preserving FIFO order).
    pub fn immediately(&mut self, ev: E) {
        self.queue.push(self.now, ev);
    }

    /// Asks the engine to stop after the current event completes.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// Why a call to [`Engine::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon passed; undelivered future events remain queued.
    HorizonReached,
    /// The event budget was exhausted (likely livelock); events remain queued.
    BudgetExhausted,
    /// The world requested a stop via [`Scheduler::request_stop`].
    Stopped,
}

/// A discrete-event simulation engine.
///
/// # Examples
///
/// ```
/// use flash_sim::{Engine, World, Scheduler, SimTime, SimDuration, RunOutcome};
///
/// struct Counter(u32);
/// impl World for Counter {
///     type Ev = ();
///     fn dispatch(&mut self, _ev: (), sched: &mut Scheduler<'_, ()>) {
///         self.0 += 1;
///         if self.0 < 5 {
///             sched.after(SimDuration::from_nanos(10), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.schedule_at(SimTime::ZERO, ());
/// let mut world = Counter(0);
/// let outcome = engine.run(&mut world, SimTime::MAX);
/// assert_eq!(outcome, RunOutcome::Drained);
/// assert_eq!(world.0, 5);
/// assert_eq!(engine.now(), SimTime::from_nanos(40));
/// ```
///
/// Cloning an `Engine` (for checkpoint/fork) snapshots the event queue,
/// the clock and every counter; running a clone against a cloned world is
/// bit-identical to running the original.
#[derive(Clone)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    budget: u64,
    clamped: u64,
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an effectively unlimited event
    /// budget.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            budget: u64::MAX,
            clamped: 0,
        }
    }

    /// Sets the maximum number of events to process across all `run` calls;
    /// exceeding it makes `run` return [`RunOutcome::BudgetExhausted`]. Acts
    /// as a livelock guard for fault experiments.
    pub fn set_event_budget(&mut self, budget: u64) {
        self.budget = budget;
    }

    /// Events left before the budget trips (`u64::MAX` when unlimited).
    /// Sharded executors hand this to their stretch hook so an external
    /// dispatch loop honors the same livelock guard.
    pub fn remaining_budget(&self) -> u64 {
        self.budget.saturating_sub(self.processed)
    }

    /// The current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of [`Scheduler::at`] calls whose timestamp preceded the
    /// current instant and was clamped to it.
    pub fn clamped_schedules(&self) -> u64 {
        self.clamped
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute time (which may be in the past only
    /// before the first `run` call).
    pub fn schedule_at(&mut self, at: SimTime, ev: E) {
        self.queue.push(at, ev);
    }

    /// Removes and returns every pending event in pop order (earliest
    /// `(time, seq)` first). The clock and counters are untouched; pushing
    /// the same sequence back via [`Engine::schedule_at`] restores the exact
    /// pop order, since fresh sequence numbers are assigned in push order.
    ///
    /// This is the seam the sharded executor uses to partition the pending
    /// set across per-shard queues and to rebuild the single queue when the
    /// shards are folded back together.
    pub fn drain_pending(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some((t, ev)) = self.queue.pop() {
            out.push((t, ev));
        }
        out
    }

    /// Runs `f` with a [`Scheduler`] positioned at the current clock,
    /// without dispatching any event. Used by executors that must invoke
    /// world code (e.g. a deferred extension call harvested from a shard)
    /// outside the normal event loop but with full scheduling ability.
    pub fn with_scheduler<R>(&mut self, f: impl FnOnce(&mut Scheduler<'_, E>) -> R) -> R {
        let mut stop = false;
        let mut sched = Scheduler {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: &mut stop,
            clamped: &mut self.clamped,
        };
        let out = f(&mut sched);
        debug_assert!(!stop, "stop requests from with_scheduler are ignored");
        out
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, ev: E) {
        self.queue.push(self.now + delay, ev);
    }

    /// Advances the clock to `t` without dispatching (no-op if `t` is not
    /// ahead of the clock). The sharded executor uses this to hand time
    /// spent inside shard windows back to the engine; events already
    /// pending before `t` would be delivered late, so this asserts there
    /// are none.
    pub fn skip_to(&mut self, t: SimTime) {
        if t <= self.now {
            return;
        }
        debug_assert!(
            self.queue.peek_time().map(|p| p >= t).unwrap_or(true),
            "skip_to({t}) would jump over pending events"
        );
        self.now = t;
    }

    /// Adds externally dispatched events (a sharded stretch) to the
    /// processed count, so event budgets cover sharded execution too.
    pub fn add_processed(&mut self, n: u64) {
        self.processed += n;
    }

    /// Runs until the queue drains, `horizon` is passed, the event budget is
    /// exhausted, or the world requests a stop.
    ///
    /// Events with timestamps `<= horizon` are delivered; the first event
    /// beyond the horizon stays queued and the engine's clock advances to
    /// `horizon`.
    pub fn run<W: World<Ev = E>>(&mut self, world: &mut W, horizon: SimTime) -> RunOutcome {
        let mut stop = false;
        loop {
            let Some(next) = self.queue.peek_time() else {
                return RunOutcome::Drained;
            };
            if next > horizon {
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            if self.processed >= self.budget {
                return RunOutcome::BudgetExhausted;
            }
            let (t, ev) = self.queue.pop().expect("peeked entry vanished");
            debug_assert!(t >= self.now, "event queue went backwards");
            self.now = t;
            self.processed += 1;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                stop_requested: &mut stop,
                clamped: &mut self.clamped,
            };
            world.dispatch(ev, &mut sched);
            if stop {
                return RunOutcome::Stopped;
            }
        }
    }

    /// Like [`Engine::run`], but after delivering an event at time `t` it
    /// drains every other event scheduled for exactly `t` — including
    /// zero-delay follow-ups queued during the batch — without re-entering
    /// the peek/compare scheduling loop per event.
    ///
    /// Delivery order, budget, horizon, and stop semantics are identical to
    /// [`Engine::run`]; only the per-event queue overhead differs.
    pub fn run_batched<W: World<Ev = E>>(&mut self, world: &mut W, horizon: SimTime) -> RunOutcome {
        let mut stop = false;
        loop {
            let Some(next) = self.queue.peek_time() else {
                return RunOutcome::Drained;
            };
            if next > horizon {
                self.now = horizon;
                return RunOutcome::HorizonReached;
            }
            if self.processed >= self.budget {
                return RunOutcome::BudgetExhausted;
            }
            let (t, ev) = self.queue.pop().expect("peeked entry vanished");
            debug_assert!(t >= self.now, "event queue went backwards");
            self.now = t;
            self.processed += 1;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                stop_requested: &mut stop,
                clamped: &mut self.clamped,
            };
            world.dispatch(ev, &mut sched);
            if stop {
                return RunOutcome::Stopped;
            }
            // Same-instant drain: O(1) bucket pops instead of full re-peeks.
            while self.processed < self.budget {
                let Some(ev) = self.queue.pop_if_at(t) else {
                    break;
                };
                self.processed += 1;
                let mut sched = Scheduler {
                    now: self.now,
                    queue: &mut self.queue,
                    stop_requested: &mut stop,
                    clamped: &mut self.clamped,
                };
                world.dispatch(ev, &mut sched);
                if stop {
                    return RunOutcome::Stopped;
                }
            }
        }
    }

    /// Processes exactly one event if one is pending; returns whether an
    /// event was processed.
    pub fn step<W: World<Ev = E>>(&mut self, world: &mut W) -> bool {
        let Some((t, ev)) = self.queue.pop() else {
            return false;
        };
        self.now = t;
        self.processed += 1;
        let mut stop = false;
        let mut sched = Scheduler {
            now: self.now,
            queue: &mut self.queue,
            stop_requested: &mut stop,
            clamped: &mut self.clamped,
        };
        world.dispatch(ev, &mut sched);
        true
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .field("clamped_schedules", &self.clamped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(u64, u32)>,
        stop_at: Option<u32>,
    }

    impl World for Recorder {
        type Ev = u32;
        fn dispatch(&mut self, ev: u32, sched: &mut Scheduler<'_, u32>) {
            self.seen.push((sched.now().as_nanos(), ev));
            if Some(ev) == self.stop_at {
                sched.request_stop();
            }
        }
    }

    #[test]
    fn runs_to_drain_in_order() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_nanos(30), 3);
        engine.schedule_at(SimTime::from_nanos(10), 1);
        engine.schedule_at(SimTime::from_nanos(20), 2);
        let mut w = Recorder {
            seen: vec![],
            stop_at: None,
        };
        assert_eq!(engine.run(&mut w, SimTime::MAX), RunOutcome::Drained);
        assert_eq!(w.seen, vec![(10, 1), (20, 2), (30, 3)]);
        assert_eq!(engine.events_processed(), 3);
    }

    #[test]
    fn horizon_stops_delivery() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_nanos(10), 1);
        engine.schedule_at(SimTime::from_nanos(100), 2);
        let mut w = Recorder {
            seen: vec![],
            stop_at: None,
        };
        let outcome = engine.run(&mut w, SimTime::from_nanos(50));
        assert_eq!(outcome, RunOutcome::HorizonReached);
        assert_eq!(w.seen, vec![(10, 1)]);
        assert_eq!(engine.now(), SimTime::from_nanos(50));
        assert_eq!(engine.pending(), 1);
        // Resuming past the horizon delivers the rest.
        assert_eq!(engine.run(&mut w, SimTime::MAX), RunOutcome::Drained);
        assert_eq!(w.seen.len(), 2);
    }

    #[test]
    fn budget_guards_livelock() {
        struct Loopy;
        impl World for Loopy {
            type Ev = ();
            fn dispatch(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                sched.after(SimDuration::from_nanos(1), ());
            }
        }
        let mut engine = Engine::new();
        engine.set_event_budget(1000);
        engine.schedule_at(SimTime::ZERO, ());
        let outcome = engine.run(&mut Loopy, SimTime::MAX);
        assert_eq!(outcome, RunOutcome::BudgetExhausted);
        assert_eq!(engine.events_processed(), 1000);
    }

    #[test]
    fn stop_request_halts_immediately() {
        let mut engine = Engine::new();
        for i in 0..10 {
            engine.schedule_at(SimTime::from_nanos(i), i as u32);
        }
        let mut w = Recorder {
            seen: vec![],
            stop_at: Some(4),
        };
        assert_eq!(engine.run(&mut w, SimTime::MAX), RunOutcome::Stopped);
        assert_eq!(w.seen.len(), 5);
        assert_eq!(engine.pending(), 5);
    }

    #[test]
    fn step_processes_single_event() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_nanos(5), 7);
        let mut w = Recorder {
            seen: vec![],
            stop_at: None,
        };
        assert!(engine.step(&mut w));
        assert!(!engine.step(&mut w));
        assert_eq!(w.seen, vec![(5, 7)]);
    }

    #[test]
    fn past_schedules_clamp_and_count_in_all_profiles() {
        struct PastScheduler {
            fired: u32,
        }
        impl World for PastScheduler {
            type Ev = u32;
            fn dispatch(&mut self, ev: u32, sched: &mut Scheduler<'_, u32>) {
                self.fired += 1;
                if ev == 0 {
                    // Asks for the past; must run at `now`, not panic.
                    sched.at(SimTime::ZERO, 1);
                    sched.at(sched.now(), 2); // not in the past: no clamp
                }
            }
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_nanos(100), 0);
        let mut w = PastScheduler { fired: 0 };
        assert_eq!(engine.run(&mut w, SimTime::MAX), RunOutcome::Drained);
        assert_eq!(w.fired, 3);
        assert_eq!(engine.now(), SimTime::from_nanos(100));
        assert_eq!(engine.clamped_schedules(), 1);
    }

    #[test]
    fn run_batched_matches_run() {
        struct Fanout {
            seen: Vec<(u64, u32)>,
        }
        impl World for Fanout {
            type Ev = u32;
            fn dispatch(&mut self, ev: u32, sched: &mut Scheduler<'_, u32>) {
                self.seen.push((sched.now().as_nanos(), ev));
                if ev < 8 {
                    sched.immediately(ev + 100);
                    sched.after(SimDuration::from_nanos(u64::from(ev % 3)), ev + 200);
                }
            }
        }
        let seed = |engine: &mut Engine<u32>| {
            for i in 0..8 {
                engine.schedule_at(SimTime::from_nanos(10 * (i % 4)), i as u32);
            }
        };
        let mut plain = Engine::new();
        seed(&mut plain);
        let mut w_plain = Fanout { seen: vec![] };
        assert_eq!(plain.run(&mut w_plain, SimTime::MAX), RunOutcome::Drained);

        let mut batched = Engine::new();
        seed(&mut batched);
        let mut w_batched = Fanout { seen: vec![] };
        assert_eq!(
            batched.run_batched(&mut w_batched, SimTime::MAX),
            RunOutcome::Drained
        );
        assert_eq!(w_plain.seen, w_batched.seen);
        assert_eq!(plain.events_processed(), batched.events_processed());
        assert_eq!(plain.now(), batched.now());
    }

    #[test]
    fn run_batched_respects_budget_and_horizon() {
        struct Loopy;
        impl World for Loopy {
            type Ev = ();
            fn dispatch(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                sched.immediately(());
            }
        }
        let mut engine = Engine::new();
        engine.set_event_budget(500);
        engine.schedule_at(SimTime::ZERO, ());
        assert_eq!(
            engine.run_batched(&mut Loopy, SimTime::MAX),
            RunOutcome::BudgetExhausted
        );
        assert_eq!(engine.events_processed(), 500);

        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_nanos(10), 1u32);
        engine.schedule_at(SimTime::from_nanos(100), 2);
        let mut w = Recorder {
            seen: vec![],
            stop_at: None,
        };
        assert_eq!(
            engine.run_batched(&mut w, SimTime::from_nanos(50)),
            RunOutcome::HorizonReached
        );
        assert_eq!(w.seen, vec![(10, 1)]);
        assert_eq!(engine.now(), SimTime::from_nanos(50));

        let mut engine = Engine::new();
        for i in 0..6 {
            engine.schedule_at(SimTime::from_nanos(7), i as u32);
        }
        let mut w = Recorder {
            seen: vec![],
            stop_at: Some(3),
        };
        assert_eq!(
            engine.run_batched(&mut w, SimTime::MAX),
            RunOutcome::Stopped
        );
        assert_eq!(w.seen.len(), 4);
        assert_eq!(engine.pending(), 2);
    }

    #[test]
    fn scheduler_immediately_preserves_fifo() {
        struct Chain(Vec<u32>);
        impl World for Chain {
            type Ev = u32;
            fn dispatch(&mut self, ev: u32, sched: &mut Scheduler<'_, u32>) {
                self.0.push(ev);
                if ev == 0 {
                    sched.immediately(1);
                    sched.immediately(2);
                }
            }
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::ZERO, 0);
        let mut w = Chain(vec![]);
        engine.run(&mut w, SimTime::MAX);
        assert_eq!(w.0, vec![0, 1, 2]);
    }
}
