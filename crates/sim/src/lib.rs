//! # flash-sim — discrete-event simulation kernel
//!
//! This crate is the foundation of the FLASH fault-containment reproduction:
//! a small, deterministic discrete-event simulation kernel. Every other crate
//! in the workspace builds its models on top of the primitives here:
//!
//! * [`SimTime`] / [`SimDuration`] — simulated nanoseconds;
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking;
//! * [`Engine`] / [`World`] / [`Scheduler`] — the event loop;
//! * [`DetRng`] — reproducible randomness for workloads and fault injection;
//! * [`Counters`], [`Summary`], [`LatencyHistogram`] — statistics.
//!
//! Determinism is a hard requirement: a fault-injection experiment is
//! identified by a (configuration, seed) pair and must replay identically so
//! failures found by the validation harness can be debugged.
//!
//! # Examples
//!
//! ```
//! use flash_sim::{Engine, World, Scheduler, SimTime, SimDuration};
//!
//! // A world that plays ping-pong with itself three times.
//! struct PingPong { hops: u32 }
//!
//! impl World for PingPong {
//!     type Ev = &'static str;
//!     fn dispatch(&mut self, ev: &'static str, sched: &mut Scheduler<'_, &'static str>) {
//!         self.hops += 1;
//!         if self.hops < 3 {
//!             let next = if ev == "ping" { "pong" } else { "ping" };
//!             sched.after(SimDuration::from_nanos(50), next);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, "ping");
//! let mut world = PingPong { hops: 0 };
//! engine.run(&mut world, SimTime::MAX);
//! assert_eq!(world.hops, 3);
//! assert_eq!(engine.now(), SimTime::from_nanos(100));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod queue;
mod rng;
mod shard;
mod stats;
mod time;
mod trace;

pub use engine::{Engine, RunOutcome, Scheduler, World};
pub use queue::EventQueue;
pub use rng::DetRng;
pub use shard::{NoHook, ShardControl, ShardCtx, ShardHook, ShardRunOutcome, ShardSim, ShardWorld};
pub use stats::{Counters, LatencyHistogram, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::TraceBuffer;
