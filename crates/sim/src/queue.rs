//! The central event queue.
//!
//! [`EventQueue`] is a time-ordered priority queue with deterministic FIFO
//! tie-breaking: two events scheduled for the same instant pop in the order
//! they were pushed. Determinism is essential for the reproducibility of the
//! fault-injection experiments — a given (configuration, seed) pair must
//! always produce bit-identical results.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: ordered by time, then insertion sequence.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue.
///
/// # Examples
///
/// ```
/// use flash_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), ev), (10, "early"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties pop in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("pushed", &self.pushed)
            .field("popped", &self.popped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_nanos(7), "c");
        q.push(SimTime::from_nanos(12), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "d");
    }
}
