//! The central event queue.
//!
//! [`EventQueue`] is a time-ordered priority queue with deterministic FIFO
//! tie-breaking: two events scheduled for the same instant pop in the order
//! they were pushed. Determinism is essential for the reproducibility of the
//! fault-injection experiments — a given (configuration, seed) pair must
//! always produce bit-identical results.
//!
//! # Two-level structure
//!
//! Nearly all events in a running machine are scheduled a handful of
//! nanoseconds ahead (link hops, directory occupancies, zero-delay
//! follow-ups), so the queue is split into two levels:
//!
//! * a **near-horizon ring** of [`RING_BUCKETS`] per-tick FIFO buckets
//!   covering the window `[base_tick, base_tick + RING_BUCKETS)`. The window
//!   is sized for the dense short-horizon traffic (link hops, controller
//!   occupancies, zero-delay follow-ups, NAK retries); a push inside it is
//!   an O(1) append to its tick's bucket, and a two-level occupancy bitmap
//!   (per-bucket bits plus a summary bit per bitmap word) makes finding the
//!   next non-empty bucket a handful of word operations even when the
//!   pending set is sparse. Bucket order is push order, so same-instant
//!   FIFO tie-breaking is free;
//! * a **far-horizon overflow** `BinaryHeap` holding everything outside the
//!   window (memory-op timeouts, watchdogs, fault arming, and the rare
//!   past-relative push). These are a small fraction of total traffic, so
//!   heap churn is off the hot path.
//!
//! `pop` compares the ring head and the heap top by `(time, seq)`, so the
//! pop sequence is bit-for-bit identical to the seed repository's single
//! `BinaryHeap` implementation — which is kept below as a `#[cfg(test)]`
//! differential-testing oracle.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Width of the near-horizon window in ticks (power of two): 2^13 ns ≈ 8.2µs.
/// Chosen empirically: wide enough for hop/occupancy/retry traffic, small
/// enough that the ring and its bitmaps stay cache-resident. Widening it to
/// cover the 50–100µs memory-op timeouts thrashes the cache for no
/// measurable gain — those pushes are rare and land in the overflow heap.
const RING_BUCKETS: usize = 1 << 13;
const RING_MASK: u64 = RING_BUCKETS as u64 - 1;
const OCC_WORDS: usize = RING_BUCKETS / 64;
const SUM_WORDS: usize = OCC_WORDS.div_ceil(64);

/// Low `n` bits set (`n` ≤ 64).
#[inline]
fn low_mask(n: usize) -> u64 {
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// An entry in the overflow heap: ordered by time, then insertion sequence.
#[derive(Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue.
///
/// # Examples
///
/// ```
/// use flash_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), ev), (10, "early"));
/// ```
///
/// Cloning an `EventQueue` (for checkpoint/fork) preserves the pending
/// set, insertion sequence numbers and window position exactly, so a
/// clone pops the same `(time, event)` sequence as the original.
#[derive(Clone)]
pub struct EventQueue<E> {
    /// Near-horizon buckets, indexed by `tick & RING_MASK`. Within the
    /// active window each tick maps to a distinct bucket.
    ring: Vec<VecDeque<(u64, E)>>,
    /// Occupancy bitmap over `ring` (bit set ⇔ bucket non-empty).
    occ: Vec<u64>,
    /// Summary bitmap over `occ` (bit set ⇔ bitmap word non-zero).
    summary: Vec<u64>,
    /// Events currently stored in the ring.
    ring_len: usize,
    /// First tick of the ring window. No ring entry precedes it.
    base_tick: u64,
    /// Tick of the earliest non-empty bucket; valid while `ring_len > 0`.
    scan_tick: u64,
    /// Events outside the ring window.
    overflow: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pushed: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            ring: (0..RING_BUCKETS).map(|_| VecDeque::new()).collect(),
            occ: vec![0; OCC_WORDS],
            summary: vec![0; SUM_WORDS],
            ring_len: 0,
            base_tick: 0,
            scan_tick: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            popped: 0,
        }
    }

    #[inline]
    fn in_window(&self, tick: u64) -> bool {
        tick >= self.base_tick && tick - self.base_tick < RING_BUCKETS as u64
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        let tick = time.as_nanos();
        if self.ring_len == 0 {
            // The ring is empty, so the window may move anywhere. Re-anchor
            // it at the earliest pending time — unless this push lands beyond
            // even the re-anchored window. Anchoring the window at a
            // far-future tick would strand it out there (a cold bucket touch
            // now, and every nearer push forced onto the heap until the
            // stranded event pops), so far-horizon pushes skip the ring
            // entirely and the empty ring keeps pops heap-only.
            let anchor = match self.overflow.peek() {
                Some(top) => top.time.as_nanos().min(tick),
                None => tick,
            };
            if tick - anchor >= RING_BUCKETS as u64 {
                self.overflow.push(Entry { time, seq, event });
                return;
            }
            self.base_tick = anchor;
            self.insert_ring(tick, seq, event);
        } else if self.in_window(tick) {
            self.insert_ring(tick, seq, event);
        } else {
            self.overflow.push(Entry { time, seq, event });
        }
    }

    /// Inserts into the ring; `tick` must lie within the active window.
    #[inline]
    fn insert_ring(&mut self, tick: u64, seq: u64, event: E) {
        debug_assert!(self.in_window(tick));
        let idx = (tick & RING_MASK) as usize;
        self.ring[idx].push_back((seq, event));
        self.occ[idx >> 6] |= 1 << (idx & 63);
        self.summary[idx >> 12] |= 1 << ((idx >> 6) & 63);
        self.ring_len += 1;
        if self.ring_len == 1 || tick < self.scan_tick {
            self.scan_tick = tick;
        }
    }

    /// The `(tick, seq)` key of the ring head, if the ring is non-empty.
    #[inline]
    fn ring_head_key(&self) -> Option<(u64, u64)> {
        if self.ring_len == 0 {
            return None;
        }
        let bucket = &self.ring[(self.scan_tick & RING_MASK) as usize];
        let (seq, _) = bucket.front().expect("scan bucket empty");
        Some((self.scan_tick, *seq))
    }

    /// Whether the next pop should come from the ring rather than the
    /// overflow heap; `None` when the queue is empty.
    #[inline]
    fn ring_pops_next(&self) -> Option<bool> {
        match (self.ring_head_key(), self.overflow.peek()) {
            (None, None) => None,
            (Some(_), None) => Some(true),
            (None, Some(_)) => Some(false),
            (Some(rk), Some(top)) => Some(rk < (top.time.as_nanos(), top.seq)),
        }
    }

    /// Pops the ring head, advancing `scan_tick` (and sliding the window
    /// forward) when its bucket empties.
    fn pop_ring(&mut self) -> (SimTime, E) {
        let idx = (self.scan_tick & RING_MASK) as usize;
        let (_, event) = self.ring[idx].pop_front().expect("scan bucket empty");
        self.ring_len -= 1;
        let time = SimTime::from_nanos(self.scan_tick);
        if self.ring[idx].is_empty() {
            self.occ[idx >> 6] &= !(1 << (idx & 63));
            if self.occ[idx >> 6] == 0 {
                self.summary[idx >> 12] &= !(1 << ((idx >> 6) & 63));
            }
            if self.ring_len > 0 {
                self.scan_tick = self.next_occupied(self.scan_tick + 1);
            }
        }
        // No ring entry precedes scan_tick, so the window may slide up to
        // it, maximising forward reach for subsequent pushes.
        self.base_tick = self.scan_tick;
        (time, event)
    }

    /// Finds the first occupied bucket at tick `from` or later (two-level
    /// bitmap scan: the summary word skips 4096 empty buckets at a time).
    /// Requires `ring_len > 0`.
    fn next_occupied(&self, from: u64) -> u64 {
        debug_assert!(self.ring_len > 0);
        let start = (from & RING_MASK) as usize;
        let len = RING_BUCKETS - (from - self.base_tick) as usize;
        // The physical scan wraps at most once; split it into two linear
        // segments.
        let seg1 = (RING_BUCKETS - start).min(len);
        if let Some(off) = self.scan_segment(start, seg1) {
            return from + off as u64;
        }
        if len > seg1 {
            if let Some(off) = self.scan_segment(0, len - seg1) {
                return from + (seg1 + off) as u64;
            }
        }
        unreachable!("ring_len > 0 but no occupied bucket in the window")
    }

    /// Scans `count` buckets from physical index `start` (no wrap) and
    /// returns the offset of the first occupied one.
    fn scan_segment(&self, start: usize, count: usize) -> Option<usize> {
        let end = start + count;
        let mut idx = start;
        // Partial head word.
        let bit = idx & 63;
        if bit != 0 {
            let take = (64 - bit).min(end - idx);
            let bits = (self.occ[idx >> 6] >> bit) & low_mask(take);
            if bits != 0 {
                return Some(idx + bits.trailing_zeros() as usize - start);
            }
            idx += take;
        }
        // Word-aligned body: consult the summary to skip runs of empty
        // bitmap words.
        while idx < end {
            let wi = idx >> 6;
            let sbits = self.summary[wi >> 6] >> (wi & 63);
            if sbits == 0 {
                // No occupied word in the rest of this summary word: jump to
                // the next summary boundary.
                idx = ((wi >> 6) + 1) << 12;
                continue;
            }
            let wj = wi + sbits.trailing_zeros() as usize;
            let widx = wj << 6;
            if widx >= end {
                return None;
            }
            idx = widx;
            let take = (end - idx).min(64);
            let bits = self.occ[wj] & low_mask(take);
            if bits != 0 {
                return Some(idx + bits.trailing_zeros() as usize - start);
            }
            // The only set bits in this word lie beyond `end` (final,
            // partial word): done with this segment.
            idx += take;
        }
        None
    }

    /// Removes and returns the earliest event, or `None` if the queue is
    /// empty. Ties pop in insertion order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let from_ring = self.ring_pops_next()?;
        self.popped += 1;
        if from_ring {
            Some(self.pop_ring())
        } else {
            let e = self.overflow.pop().expect("peeked entry vanished");
            Some((e.time, e.event))
        }
    }

    /// Removes and returns the next event only if it is scheduled exactly at
    /// `at`; used by `Engine::run_batched` to drain same-instant events
    /// without re-running the full scheduling loop per event.
    pub fn pop_if_at(&mut self, at: SimTime) -> Option<E> {
        match self.ring_pops_next()? {
            true if self.scan_tick == at.as_nanos() => {
                self.popped += 1;
                Some(self.pop_ring().1)
            }
            false if self.overflow.peek().expect("peeked entry vanished").time == at => {
                self.popped += 1;
                Some(self.overflow.pop().expect("peeked entry vanished").event)
            }
            _ => None,
        }
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let ring = self.ring_head_key();
        let heap = self.overflow.peek().map(|e| (e.time.as_nanos(), e.seq));
        let key = match (ring, heap) {
            (None, None) => return None,
            (Some(k), None) | (None, Some(k)) => k,
            (Some(a), Some(b)) => a.min(b),
        };
        Some(SimTime::from_nanos(key.0))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Total number of events ever popped.
    pub fn total_popped(&self) -> u64 {
        self.popped
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        for bucket in &mut self.ring {
            bucket.clear();
        }
        self.occ.fill(0);
        self.summary.fill(0);
        self.ring_len = 0;
        self.overflow.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("ring", &self.ring_len)
            .field("overflow", &self.overflow.len())
            .field("pushed", &self.pushed)
            .field("popped", &self.popped)
            .finish()
    }
}

/// The seed repository's single-`BinaryHeap` queue, kept verbatim as a
/// differential-testing oracle for the two-level queue above.
#[cfg(test)]
pub(crate) mod oracle {
    use super::{Entry, SimTime};
    use std::collections::BinaryHeap;

    /// Reference implementation: one max-heap over inverted `(time, seq)`.
    pub(crate) struct HeapQueue<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> HeapQueue<E> {
        pub(crate) fn new() -> Self {
            HeapQueue {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }

        pub(crate) fn push(&mut self, time: SimTime, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { time, seq, event });
        }

        pub(crate) fn pop(&mut self) -> Option<(SimTime, E)> {
            self.heap.pop().map(|e| (e.time, e.event))
        }

        pub(crate) fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|e| e.time)
        }

        pub(crate) fn len(&self) -> usize {
            self.heap.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::oracle::HeapQueue;
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(q.pop().is_some());
        assert!(q.peek_time().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn counters_track_traffic() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.pop();
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.total_popped(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(SimTime::from_nanos(7), "c");
        q.push(SimTime::from_nanos(12), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "d");
    }

    #[test]
    fn far_pushes_take_the_overflow_path() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0u32);
        // Far beyond the ring window.
        q.push(SimTime::from_nanos(1_000_000), 2);
        q.push(SimTime::from_nanos(3), 1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1_000_000)));
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn same_instant_fifo_spans_ring_and_overflow() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0u32); // anchors the window at tick 0
        q.push(SimTime::from_nanos(200_000), 1); // outside the window → overflow
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_nanos(150_000), 2); // ring empty → window rebases
        q.push(SimTime::from_nanos(200_000), 3); // now in window → ring
                                                 // Seq order at t=200000 must hold across the two levels: 1 before 3.
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(150_000), 2));
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(200_000), 1));
        assert_eq!(q.pop().unwrap(), (SimTime::from_nanos(200_000), 3));
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_if_at_only_takes_exact_matches() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 'a');
        q.push(SimTime::from_nanos(5), 'b');
        q.push(SimTime::from_nanos(6), 'c');
        assert_eq!(q.pop_if_at(SimTime::from_nanos(4)), None);
        assert_eq!(q.pop_if_at(SimTime::from_nanos(5)), Some('a'));
        assert_eq!(q.pop_if_at(SimTime::from_nanos(5)), Some('b'));
        assert_eq!(q.pop_if_at(SimTime::from_nanos(5)), None);
        assert_eq!(q.pop_if_at(SimTime::from_nanos(6)), Some('c'));
        assert_eq!(q.total_popped(), 3);
    }

    /// Drives the two-level queue and the heap oracle through the same
    /// random push/pop interleaving and asserts identical pop sequences.
    fn differential_run(seed: u64, ops: usize) {
        let mut q = EventQueue::new();
        let mut o = HeapQueue::new();
        let mut rng = DetRng::new(seed);
        let mut now = 0u64;
        let mut tag = 0u64;
        for _ in 0..ops {
            match rng.below(10) {
                // Push: mixture of near deltas, far deltas, same-instant
                // bursts, and the occasional past-relative time.
                0..=5 => {
                    let t = match rng.below(8) {
                        0 => now + rng.below(4), // same instant or just ahead
                        1..=4 => now + rng.below(64),
                        5 => now + rng.below(1_000_000), // far horizon
                        6 => now.saturating_sub(rng.below(32)), // in the past
                        _ => now + (RING_BUCKETS as u64 - 32) + rng.below(64), // window edge
                    };
                    let burst = if rng.below(5) == 0 { 4 } else { 1 };
                    for _ in 0..burst {
                        q.push(SimTime::from_nanos(t), tag);
                        o.push(SimTime::from_nanos(t), tag);
                        tag += 1;
                    }
                }
                // Pop from both and compare.
                _ => {
                    assert_eq!(q.peek_time(), o.peek_time(), "peek diverged");
                    let got = q.pop();
                    let want = o.pop();
                    assert_eq!(got, want, "pop diverged (seed {seed})");
                    if let Some((t, _)) = got {
                        now = t.as_nanos();
                    }
                }
            }
            assert_eq!(q.len(), o.len());
        }
        // Drain both completely.
        loop {
            let got = q.pop();
            let want = o.pop();
            assert_eq!(got, want, "drain diverged (seed {seed})");
            if got.is_none() {
                break;
            }
        }
    }

    #[test]
    fn differential_vs_heap_oracle() {
        for seed in 0..32 {
            differential_run(0xA11CE ^ seed, 4_000);
        }
    }

    #[test]
    fn differential_vs_heap_oracle_pop_if_at() {
        // Same oracle comparison, but draining through pop_if_at batches the
        // way run_batched does.
        let mut q = EventQueue::new();
        let mut o = HeapQueue::new();
        let mut rng = DetRng::new(0xD1FF);
        for i in 0..2_000u64 {
            let t = SimTime::from_nanos(rng.below(512));
            q.push(t, i);
            o.push(t, i);
        }
        while let Some((t, ev)) = q.pop() {
            assert_eq!(o.pop(), Some((t, ev)));
            while let Some(ev) = q.pop_if_at(t) {
                assert_eq!(o.pop(), Some((t, ev)), "batched drain diverged");
            }
        }
        assert_eq!(o.pop(), None);
    }
}
