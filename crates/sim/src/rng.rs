//! Deterministic random number generation.
//!
//! All randomness in the workspace flows from [`DetRng`], a SplitMix64-based
//! generator. Experiments are identified by a (configuration, seed) pair and
//! must be bit-reproducible; `DetRng` guarantees a stable stream independent
//! of platform and of the `rand` crate's version.

/// A small, fast, deterministic PRNG (SplitMix64).
///
/// Not cryptographically secure; used only for workload and fault-injection
/// randomization.
///
/// # Examples
///
/// ```
/// use flash_sim::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a seed. Any seed value is acceptable.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point family by pre-mixing the seed.
        DetRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent child generator; used to give each node or
    /// subsystem its own stream without cross-coupling.
    pub fn fork(&mut self, tag: u64) -> DetRng {
        let mixed = self.next_u64() ^ tag.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        DetRng::new(mixed)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire-style rejection-free-enough reduction with one retry loop to
        // remove modulo bias.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = widening_mul(r, bound);
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(span + 1)
    }

    /// Uniform `usize` index in `[0, len)`. Returns 0 when `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Shuffles `items` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

/// 64x64 -> 128-bit multiply, returning (high, low) words.
#[inline]
fn widening_mul(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = DetRng::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = DetRng::new(7);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = DetRng::new(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::new(1);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..100 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = DetRng::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_inclusive(5, 8) {
                5 => lo_seen = true,
                8 => hi_seen = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(9);
        for _ in 0..100 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
        }
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = DetRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = DetRng::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut r = DetRng::new(17);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
