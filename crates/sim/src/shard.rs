//! Conservative per-shard parallel event execution.
//!
//! [`ShardSim`] partitions a simulation's pending events across `S` shards,
//! each owning its own two-level [`EventQueue`], and advances them in
//! *conservative windows*: if `L` (the lookahead) is a lower bound on the
//! latency of every cross-shard interaction, then all events in
//! `[T, T + L)` — where `T` is the global minimum pending time — can be
//! dispatched shard-locally in parallel without ever violating causal
//! order, because anything a shard sends to a peer inside the window
//! cannot take effect before the window ends.
//!
//! Cross-shard traffic travels through *mailboxes*: during a window each
//! shard appends handoffs to its own outbox in dispatch order; at the
//! window barrier the coordinator drains the outboxes in fixed shard order
//! (source 0, 1, …, S−1, each in emit order) and applies them to the
//! destination shards. Destination queues assign fresh `(time, seq)` keys
//! in that drain order, so the merged order is the same deterministic
//! tie-break the single-queue engine uses — and, crucially, it depends
//! only on the shard layout, never on how many worker threads executed
//! the windows. A 1-worker run and an N-worker run of the same shard
//! layout are bit-identical.
//!
//! With `workers > 1`, shards are multiplexed across OS threads
//! (round-robin by shard index); the barrier protocol keeps the windows
//! aligned. `workers == 1` takes a plain sequential path with the same
//! per-shard semantics.

use crate::engine::Scheduler;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};
use std::sync::{Barrier, Mutex};

/// Simulation state owned by one shard.
///
/// `Send` is required so shards can execute on worker threads. A shard
/// world must only touch its own state during [`ShardWorld::dispatch`];
/// everything destined for a peer shard goes through
/// [`ShardCtx::send`], and must be timestamped at or beyond the current
/// window's end (guaranteed naturally when the event models a physical
/// interaction no faster than the lookahead).
pub trait ShardWorld: Send {
    /// The event type driving this shard.
    type Ev: Send;
    /// Cross-shard payload carried through the mailboxes.
    type Handoff: Send;

    /// Handles one shard-local event at time `ctx.now()`.
    fn dispatch(&mut self, ev: Self::Ev, ctx: &mut ShardCtx<'_, Self::Ev, Self::Handoff>);

    /// Applies one handoff sent by a peer shard, timestamped `at`
    /// (`at` is never earlier than any event this shard has dispatched).
    /// Called at the window barrier, in fixed source-shard order.
    fn apply_handoff(
        &mut self,
        at: SimTime,
        h: Self::Handoff,
        ctx: &mut ShardCtx<'_, Self::Ev, Self::Handoff>,
    );
}

/// Scheduling context handed to [`ShardWorld`] callbacks: local scheduling
/// into the shard's own queue plus cross-shard sends into the mailbox.
#[allow(missing_debug_implementations)]
pub struct ShardCtx<'a, E, H> {
    now: SimTime,
    shard: usize,
    window_end: SimTime,
    queue: &'a mut EventQueue<E>,
    outbox: &'a mut Vec<(usize, SimTime, H)>,
    clamped: &'a mut u64,
    stop_scratch: bool,
}

impl<'a, E, H> ShardCtx<'a, E, H> {
    /// The current simulated time (the event's timestamp, or the window
    /// end during handoff application).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The exclusive end of the current window — the time at which any
    /// handoff sent from this dispatch will be applied by its
    /// destination shard.
    #[inline]
    pub fn window_end(&self) -> SimTime {
        self.window_end
    }

    /// The shard this context belongs to.
    #[inline]
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Schedules a shard-local event at absolute time `at` (clamped to
    /// `now` if in the past, mirroring [`Scheduler::at`]).
    pub fn at(&mut self, at: SimTime, ev: E) {
        if at < self.now {
            *self.clamped += 1;
        }
        self.queue.push(at.max(self.now), ev);
    }

    /// Schedules a shard-local event `delay` after the current time.
    pub fn after(&mut self, delay: SimDuration, ev: E) {
        self.queue.push(self.now + delay, ev);
    }

    /// Sends a handoff to shard `dst`, stamped with its nominal time `at`.
    ///
    /// The handoff is merged at the window barrier: the destination's
    /// [`ShardWorld::apply_handoff`] runs with `ctx.now()` at the window
    /// end, and must not schedule anything earlier than that (shard-local
    /// time is monotone). When `at` lands inside the window — a physical
    /// interaction that completed mid-window, like a link transit that
    /// started before the window opened — the destination applies it at
    /// the barrier, a skew bounded by the lookahead. Handoffs *initiated*
    /// inside the window always satisfy `at >= window_end` because the
    /// lookahead lower-bounds cross-shard latency.
    pub fn send(&mut self, dst: usize, at: SimTime, h: H) {
        self.outbox.push((dst, at, h));
    }

    /// A plain [`Scheduler`] over the shard-local queue, for reusing
    /// dispatch code written against the single-queue engine. Stop
    /// requests are ignored (shards cannot stop the windowed run).
    pub fn scheduler(&mut self) -> Scheduler<'_, E> {
        Scheduler::over(self.now, self.queue, &mut self.stop_scratch, self.clamped)
    }
}

/// Flow control returned by [`ShardHook::control`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardControl {
    /// Keep running windows.
    Continue,
    /// Stop after this barrier; [`ShardSim::run`] returns
    /// [`ShardRunOutcome::Stopped`].
    Stop,
}

/// Why [`ShardSim::run`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardRunOutcome {
    /// Every shard queue drained.
    Drained,
    /// The earliest pending event lies beyond the horizon.
    HorizonReached,
    /// The hook requested a stop.
    Stopped,
}

/// Barrier-time observer: the executor's seam for harvesting per-shard
/// side state (e.g. deferred global work) and deciding whether to keep
/// running. All callbacks run on the coordinator thread with exclusive
/// access, once per window, after the mailboxes have been merged.
pub trait ShardHook<W> {
    /// Called for each shard, in shard order.
    fn per_shard(&mut self, _shard: usize, _world: &mut W) {}

    /// Called once per window after every `per_shard` call. `next_event`
    /// is the earliest pending time across all shards (`None` when
    /// drained).
    fn control(&mut self, _window_end: SimTime, _next_event: Option<SimTime>) -> ShardControl {
        ShardControl::Continue
    }
}

/// The no-op hook.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoHook;
impl<W> ShardHook<W> for NoHook {}

/// Per-shard execution state riding alongside the world.
struct Cell<'w, W: ShardWorld> {
    queue: EventQueue<W::Ev>,
    world: &'w mut W,
    outbox: Vec<(usize, SimTime, W::Handoff)>,
    processed: u64,
    clamped: u64,
}

impl<'w, W: ShardWorld> Cell<'w, W> {
    /// Dispatches every pending event strictly before `window_end`.
    fn run_window(&mut self, shard: usize, window_end: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t >= window_end {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked entry vanished");
            self.processed += 1;
            let mut ctx = ShardCtx {
                now: t,
                shard,
                window_end,
                queue: &mut self.queue,
                outbox: &mut self.outbox,
                clamped: &mut self.clamped,
                stop_scratch: false,
            };
            self.world.dispatch(ev, &mut ctx);
        }
    }
}

/// The conservative sharded event engine: `S` per-shard [`EventQueue`]s
/// advanced in lookahead windows, with deterministic fixed-order mailbox
/// merges at each window barrier.
///
/// See the [module docs](self) for the synchronization argument. The
/// executor seeds events with [`ShardSim::seed`], supplies one
/// [`ShardWorld`] per shard to [`ShardSim::run`], and afterwards drains
/// any undelivered events with [`ShardSim::drain`].
#[derive(Debug)]
pub struct ShardSim<E, H> {
    queues: Vec<EventQueue<E>>,
    lookahead: SimDuration,
    now: SimTime,
    processed: u64,
    clamped: u64,
    _handoff: std::marker::PhantomData<fn() -> H>,
}

impl<E: Send, H: Send> ShardSim<E, H> {
    /// Creates an engine with `n_shards` empty shard queues and the given
    /// lookahead window. `lookahead` must be at least 1ns (a zero window
    /// cannot advance).
    pub fn new(n_shards: usize, lookahead: SimDuration) -> Self {
        assert!(n_shards > 0, "at least one shard");
        assert!(
            lookahead >= SimDuration::from_nanos(1),
            "lookahead must be positive"
        );
        ShardSim {
            queues: (0..n_shards).map(|_| EventQueue::new()).collect(),
            lookahead,
            now: SimTime::ZERO,
            processed: 0,
            clamped: 0,
            _handoff: std::marker::PhantomData,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.queues.len()
    }

    /// Schedules an event into one shard's queue. Seeding order fixes the
    /// same-instant tie-break, exactly as push order does on the single
    /// queue.
    pub fn seed(&mut self, shard: usize, at: SimTime, ev: E) {
        self.queues[shard].push(at, ev);
    }

    /// The earliest pending time across all shards.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queues.iter().filter_map(|q| q.peek_time()).min()
    }

    /// Total pending events across all shards.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// Events dispatched across all `run` calls.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Clamped (past-time) schedules across all `run` calls.
    pub fn clamped_schedules(&self) -> u64 {
        self.clamped
    }

    /// The clock: the end of the last completed window (or the horizon).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Removes and returns all pending events as `(shard, time, event)`,
    /// each shard's slice in pop order. Merging by `(time, shard, seq)`
    /// reconstructs the canonical fold order.
    pub fn drain(&mut self) -> Vec<(usize, SimTime, E)> {
        let mut out = Vec::with_capacity(self.pending());
        for (s, q) in self.queues.iter_mut().enumerate() {
            while let Some((t, ev)) = q.pop() {
                out.push((s, t, ev));
            }
        }
        out
    }

    /// Runs conservative windows until the queues drain, the horizon is
    /// passed, or `hook` requests a stop. Events with timestamps
    /// `<= horizon` are delivered. `workers` is clamped to `[1, n_shards]`;
    /// any worker count yields a bit-identical execution.
    pub fn run<W, K>(
        &mut self,
        worlds: &mut [W],
        horizon: SimTime,
        workers: usize,
        hook: &mut K,
    ) -> ShardRunOutcome
    where
        W: ShardWorld<Ev = E, Handoff = H>,
        K: ShardHook<W>,
    {
        assert_eq!(worlds.len(), self.queues.len(), "one world per shard queue");
        let workers = workers.clamp(1, self.queues.len());
        // Move the queues into per-shard cells for the duration of the run.
        let mut cells: Vec<Cell<'_, W>> = std::mem::take(&mut self.queues)
            .into_iter()
            .zip(worlds.iter_mut())
            .map(|(queue, world)| Cell {
                queue,
                world,
                outbox: Vec::new(),
                processed: 0,
                clamped: 0,
            })
            .collect();

        let outcome = if workers == 1 {
            self.run_sequential(&mut cells, horizon, hook)
        } else {
            self.run_threaded(&mut cells, horizon, workers, hook)
        };

        // Return the queues and fold the counters.
        self.queues = cells
            .iter_mut()
            .map(|c| {
                self.processed += c.processed;
                self.clamped += c.clamped;
                c.processed = 0;
                c.clamped = 0;
                std::mem::take(&mut c.queue)
            })
            .collect();
        outcome
    }

    /// One window's bounds: `Some((start, exclusive_end))`, or the outcome
    /// if the run is over.
    fn window_bounds<W: ShardWorld<Ev = E, Handoff = H>>(
        &self,
        cells: &[Cell<'_, W>],
        horizon: SimTime,
    ) -> Result<(SimTime, SimTime), ShardRunOutcome> {
        let Some(t) = cells.iter().filter_map(|c| c.queue.peek_time()).min() else {
            return Err(ShardRunOutcome::Drained);
        };
        if t > horizon {
            return Err(ShardRunOutcome::HorizonReached);
        }
        // Exclusive end: cap at horizon + 1ns so horizon-time events run.
        let end = (t + self.lookahead).min(horizon + SimDuration::from_nanos(1));
        Ok((t, end))
    }

    /// Merges every outbox in fixed shard order, applying handoffs to
    /// their destination shards; then harvests via the hook. Returns the
    /// hook's control decision. Coordinator-only.
    fn barrier_merge<W, K>(
        cells: &mut [Cell<'_, W>],
        window_end: SimTime,
        hook: &mut K,
    ) -> ShardControl
    where
        W: ShardWorld<Ev = E, Handoff = H>,
        K: ShardHook<W>,
    {
        for src in 0..cells.len() {
            let outbox = std::mem::take(&mut cells[src].outbox);
            for (dst, at, h) in outbox {
                let cell = &mut cells[dst];
                let mut ctx = ShardCtx {
                    now: window_end,
                    shard: dst,
                    window_end,
                    queue: &mut cell.queue,
                    outbox: &mut cell.outbox,
                    clamped: &mut cell.clamped,
                    stop_scratch: false,
                };
                cell.world.apply_handoff(at, h, &mut ctx);
            }
        }
        for (s, cell) in cells.iter_mut().enumerate() {
            hook.per_shard(s, cell.world);
        }
        let next = cells.iter().filter_map(|c| c.queue.peek_time()).min();
        hook.control(window_end, next)
    }

    fn run_sequential<W, K>(
        &mut self,
        cells: &mut [Cell<'_, W>],
        horizon: SimTime,
        hook: &mut K,
    ) -> ShardRunOutcome
    where
        W: ShardWorld<Ev = E, Handoff = H>,
        K: ShardHook<W>,
    {
        loop {
            let (_, end) = match self.window_bounds(cells, horizon) {
                Ok(w) => w,
                Err(out) => {
                    if out == ShardRunOutcome::HorizonReached {
                        self.now = horizon;
                    }
                    return out;
                }
            };
            for (s, cell) in cells.iter_mut().enumerate() {
                cell.run_window(s, end);
            }
            self.now = end;
            if Self::barrier_merge(cells, end, hook) == ShardControl::Stop {
                return ShardRunOutcome::Stopped;
            }
        }
    }

    fn run_threaded<W, K>(
        &mut self,
        cells: &mut [Cell<'_, W>],
        horizon: SimTime,
        workers: usize,
        hook: &mut K,
    ) -> ShardRunOutcome
    where
        W: ShardWorld<Ev = E, Handoff = H>,
        K: ShardHook<W>,
    {
        // Window spec shared with the workers: the exclusive end of the
        // current window, or None to shut down.
        let spec: Mutex<Option<SimTime>> = Mutex::new(None);
        let start_barrier = Barrier::new(workers);
        let end_barrier = Barrier::new(workers);
        let n = cells.len();
        let cell_slots: Vec<Mutex<&mut Cell<'_, W>>> = cells.iter_mut().map(Mutex::new).collect();

        let mut outcome = ShardRunOutcome::Drained;
        std::thread::scope(|scope| {
            // Workers 1..workers; the coordinator (this thread) is worker 0.
            let mut handles = Vec::new();
            for w in 1..workers {
                let spec = &spec;
                let start_barrier = &start_barrier;
                let end_barrier = &end_barrier;
                let cell_slots = &cell_slots;
                handles.push(scope.spawn(move || loop {
                    start_barrier.wait();
                    let Some(end) = *spec.lock().expect("window spec poisoned") else {
                        return;
                    };
                    for s in (w..n).step_by(workers) {
                        let mut cell = cell_slots[s].lock().expect("shard cell poisoned");
                        cell.run_window(s, end);
                    }
                    end_barrier.wait();
                }));
            }

            loop {
                // Coordinator: cells are unlocked here (workers are parked
                // at start_barrier), so locks are uncontended.
                let bounds = {
                    let mut times = Vec::with_capacity(n);
                    for slot in &cell_slots {
                        times.push(slot.lock().expect("shard cell poisoned").queue.peek_time());
                    }
                    match times.into_iter().flatten().min() {
                        None => Err(ShardRunOutcome::Drained),
                        Some(t) if t > horizon => Err(ShardRunOutcome::HorizonReached),
                        Some(t) => Ok((
                            t,
                            (t + self.lookahead).min(horizon + SimDuration::from_nanos(1)),
                        )),
                    }
                };
                let end = match bounds {
                    Ok((_, end)) => end,
                    Err(out) => {
                        if out == ShardRunOutcome::HorizonReached {
                            self.now = horizon;
                        }
                        outcome = out;
                        *spec.lock().expect("window spec poisoned") = None;
                        start_barrier.wait();
                        break;
                    }
                };
                *spec.lock().expect("window spec poisoned") = Some(end);
                start_barrier.wait();
                for s in (0..n).step_by(workers) {
                    let mut cell = cell_slots[s].lock().expect("shard cell poisoned");
                    cell.run_window(s, end);
                }
                end_barrier.wait();
                // All workers are done with the window and parked on their
                // way back to start_barrier; merge + hook run exclusively.
                self.now = end;
                let control = {
                    let mut guards: Vec<_> = cell_slots
                        .iter()
                        .map(|s| s.lock().expect("shard cell poisoned"))
                        .collect();
                    // Rebuild a &mut [Cell] view for the merge.
                    let mut view: Vec<&mut Cell<'_, W>> =
                        guards.iter_mut().map(|g| &mut ***g).collect();
                    Self::barrier_merge_view(&mut view, end, hook)
                };
                if control == ShardControl::Stop {
                    outcome = ShardRunOutcome::Stopped;
                    *spec.lock().expect("window spec poisoned") = None;
                    start_barrier.wait();
                    break;
                }
            }
            for h in handles {
                h.join().expect("shard worker panicked");
            }
        });
        outcome
    }

    /// `barrier_merge` over a view of mutable cell references (the
    /// threaded path holds the cells behind mutex guards).
    fn barrier_merge_view<W, K>(
        cells: &mut [&mut Cell<'_, W>],
        window_end: SimTime,
        hook: &mut K,
    ) -> ShardControl
    where
        W: ShardWorld<Ev = E, Handoff = H>,
        K: ShardHook<W>,
    {
        for src in 0..cells.len() {
            let outbox = std::mem::take(&mut cells[src].outbox);
            for (dst, at, h) in outbox {
                let cell = &mut *cells[dst];
                let mut ctx = ShardCtx {
                    now: window_end,
                    shard: dst,
                    window_end,
                    queue: &mut cell.queue,
                    outbox: &mut cell.outbox,
                    clamped: &mut cell.clamped,
                    stop_scratch: false,
                };
                cell.world.apply_handoff(at, h, &mut ctx);
            }
        }
        for (s, cell) in cells.iter_mut().enumerate() {
            hook.per_shard(s, cell.world);
        }
        let next = cells.iter().filter_map(|c| c.queue.peek_time()).min();
        hook.control(window_end, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy relay world: each event carries a payload; dispatch logs
    /// `(time, shard, payload)` and forwards the payload either locally
    /// (short delay) or to a peer shard (delay >= LOOKAHEAD), for a fixed
    /// number of bounces. Deterministic by construction.
    const LOOKAHEAD: u64 = 40;

    #[derive(Clone, Debug)]
    struct Ball {
        id: u64,
        bounces: u32,
    }

    struct Relay {
        shard: usize,
        n_shards: usize,
        log: Vec<(u64, usize, u64)>,
    }

    impl Relay {
        fn bounce(&self, ball: &Ball) -> (usize, u64) {
            // Pseudo-random but deterministic: destination + delay from the
            // ball id and bounce count.
            let h = ball
                .id
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(ball.bounces as u64);
            let dst = (h % self.n_shards as u64) as usize;
            let delay = LOOKAHEAD + (h >> 8) % 100;
            (dst, delay)
        }
    }

    impl ShardWorld for Relay {
        type Ev = Ball;
        type Handoff = Ball;

        fn dispatch(&mut self, mut ball: Ball, ctx: &mut ShardCtx<'_, Ball, Ball>) {
            self.log.push((ctx.now().as_nanos(), self.shard, ball.id));
            if ball.bounces == 0 {
                return;
            }
            ball.bounces -= 1;
            let (dst, delay) = self.bounce(&ball);
            let at = ctx.now() + SimDuration::from_nanos(delay);
            if dst == self.shard {
                ctx.at(at, ball);
            } else {
                ctx.send(dst, at, ball);
            }
        }

        fn apply_handoff(&mut self, at: SimTime, ball: Ball, ctx: &mut ShardCtx<'_, Ball, Ball>) {
            ctx.at(at, ball);
        }
    }

    fn make_worlds(s: usize) -> Vec<Relay> {
        (0..s)
            .map(|shard| Relay {
                shard,
                n_shards: s,
                log: Vec::new(),
            })
            .collect()
    }

    fn seeded_sim(s: usize) -> ShardSim<Ball, Ball> {
        let mut sim = ShardSim::new(s, SimDuration::from_nanos(LOOKAHEAD));
        for id in 0..24u64 {
            sim.seed(
                (id as usize) % s,
                SimTime::from_nanos(id * 3),
                Ball { id, bounces: 50 },
            );
        }
        sim
    }

    #[allow(clippy::type_complexity)]
    fn run_relay(s: usize, workers: usize) -> (Vec<Vec<(u64, usize, u64)>>, u64) {
        let mut sim = seeded_sim(s);
        let mut worlds = make_worlds(s);
        let out = sim.run(&mut worlds, SimTime::MAX, workers, &mut NoHook);
        assert_eq!(out, ShardRunOutcome::Drained);
        (
            worlds.into_iter().map(|w| w.log).collect(),
            sim.events_processed(),
        )
    }

    /// The worker count never changes anything: per-shard dispatch logs are
    /// bit-identical between 1 worker and N workers.
    #[test]
    fn worker_count_invariance() {
        for s in [2, 3, 4, 7] {
            let (log1, n1) = run_relay(s, 1);
            for workers in [2, 3, 8] {
                let (logn, nn) = run_relay(s, workers);
                assert_eq!(n1, nn, "s={s} workers={workers}");
                assert_eq!(log1, logn, "s={s} workers={workers}");
            }
        }
    }

    /// The cross-shard mailbox merge preserves single-queue pop order: a
    /// sharded run dispatches the same (time, payload) multiset, and for
    /// every pair of events on the *same* shard, in the same relative
    /// order as the single-queue reference run.
    #[test]
    fn mailbox_merge_matches_single_queue_pop_order() {
        use crate::engine::{Engine, World};

        // Single-queue reference: same topology, one queue, events tagged
        // with their home shard.
        struct RefWorld {
            n_shards: usize,
            log: Vec<(u64, usize, u64)>,
        }
        impl World for RefWorld {
            type Ev = (usize, Ball);
            fn dispatch(
                &mut self,
                (shard, mut ball): (usize, Ball),
                sched: &mut Scheduler<'_, (usize, Ball)>,
            ) {
                self.log.push((sched.now().as_nanos(), shard, ball.id));
                if ball.bounces == 0 {
                    return;
                }
                ball.bounces -= 1;
                let relay = Relay {
                    shard,
                    n_shards: self.n_shards,
                    log: Vec::new(),
                };
                let (dst, delay) = relay.bounce(&ball);
                sched.after(SimDuration::from_nanos(delay), (dst, ball));
            }
        }

        for s in [2, 4] {
            let (shard_logs, _) = run_relay(s, 3);
            // Flatten the sharded logs into one timeline ordered by
            // (time, shard): within one timestamp the canonical merge
            // order is shard-major, and within (time, shard) the log is
            // already in local pop order.
            let mut merged: Vec<(u64, usize, u64)> = shard_logs.iter().flatten().copied().collect();
            merged.sort_by_key(|&(t, shard, _)| (t, shard));

            let mut engine = Engine::new();
            let mut rw = RefWorld {
                n_shards: s,
                log: Vec::new(),
            };
            for id in 0..24u64 {
                engine.schedule_at(
                    SimTime::from_nanos(id * 3),
                    ((id as usize) % s, Ball { id, bounces: 50 }),
                );
            }
            let out = engine.run(&mut rw, SimTime::MAX);
            assert_eq!(out, crate::engine::RunOutcome::Drained);
            let mut reference = rw.log;
            reference.sort_by_key(|&(t, shard, _)| (t, shard));
            assert_eq!(
                merged, reference,
                "s={s}: sharded merge order diverged from single-queue pop order"
            );
        }
    }

    /// Horizon and drain semantics: a horizon mid-run stops with pending
    /// events; draining and reseeding resumes identically.
    #[test]
    fn horizon_stops_and_resumes() {
        let mut sim = seeded_sim(3);
        let mut worlds = make_worlds(3);
        let out = sim.run(&mut worlds, SimTime::from_nanos(500), 2, &mut NoHook);
        assert_eq!(out, ShardRunOutcome::HorizonReached);
        assert!(sim.pending() > 0);
        assert_eq!(sim.now(), SimTime::from_nanos(500));
        let out = sim.run(&mut worlds, SimTime::MAX, 2, &mut NoHook);
        assert_eq!(out, ShardRunOutcome::Drained);

        // Full run in one go matches the split run.
        let (ref_logs, _) = run_relay(3, 1);
        let split_logs: Vec<_> = worlds.into_iter().map(|w| w.log).collect();
        assert_eq!(ref_logs, split_logs);
    }

    /// The hook sees every window barrier and can stop the run.
    #[test]
    fn hook_can_stop() {
        struct StopAfter {
            windows: u32,
            stop_at: u32,
        }
        impl ShardHook<Relay> for StopAfter {
            fn control(&mut self, _end: SimTime, _next: Option<SimTime>) -> ShardControl {
                self.windows += 1;
                if self.windows >= self.stop_at {
                    ShardControl::Stop
                } else {
                    ShardControl::Continue
                }
            }
        }
        for workers in [1, 2] {
            let mut sim = seeded_sim(3);
            let mut worlds = make_worlds(3);
            let mut hook = StopAfter {
                windows: 0,
                stop_at: 5,
            };
            let out = sim.run(&mut worlds, SimTime::MAX, workers, &mut hook);
            assert_eq!(out, ShardRunOutcome::Stopped);
            assert_eq!(hook.windows, 5);
            assert!(sim.pending() > 0, "stopped mid-run");
        }
    }

    /// Drain returns each shard's pending set in pop order.
    #[test]
    fn drain_returns_pop_order() {
        let mut sim: ShardSim<u64, ()> = ShardSim::new(2, SimDuration::from_nanos(10));
        sim.seed(0, SimTime::from_nanos(30), 1);
        sim.seed(0, SimTime::from_nanos(10), 2);
        sim.seed(1, SimTime::from_nanos(20), 3);
        let drained = sim.drain();
        assert_eq!(
            drained,
            vec![
                (0, SimTime::from_nanos(10), 2),
                (0, SimTime::from_nanos(30), 1),
                (1, SimTime::from_nanos(20), 3),
            ]
        );
        assert_eq!(sim.pending(), 0);
    }
}
