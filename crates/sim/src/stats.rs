//! Lightweight statistics helpers used across the simulator: counters,
//! running summaries and fixed-bucket histograms of simulated durations.

use crate::time::SimDuration;
use std::fmt;

/// A named set of monotonically increasing event counters.
///
/// Counter names are `&'static str` literals, so the hot path (a handful of
/// counters bumped once per simulated event) scans a small flat vector
/// comparing *addresses* first — the same call site always passes the same
/// literal — and falls back to content comparison only for names minted at
/// a different address (e.g. the same literal in another crate).
///
/// # Examples
///
/// ```
/// use flash_sim::Counters;
///
/// let mut c = Counters::new();
/// c.add("packets_sent", 3);
/// c.incr("packets_sent");
/// assert_eq!(c.get("packets_sent"), 4);
/// assert_eq!(c.get("never_touched"), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Insertion-ordered; [`Counters::iter`] sorts on demand.
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to counter `name`, creating it if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| std::ptr::eq(e.0, name)) {
            e.1 += n;
            return;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == name) {
            e.1 += n;
            return;
        }
        self.entries.push((name, n));
    }

    /// Adds one to counter `name`.
    pub fn incr(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads counter `name`; untouched counters read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|e| e.0 == name)
            .map(|e| e.1)
            .unwrap_or(0)
    }

    /// Iterates over all (name, value) pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|e| e.0);
        sorted.into_iter()
    }

    /// Merges another counter set into this one (summing shared names).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl PartialEq for Counters {
    fn eq(&self, other: &Self) -> bool {
        self.iter().eq(other.iter())
    }
}
impl Eq for Counters {}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k}: {v}")?;
        }
        Ok(())
    }
}

/// Running summary (count/min/max/mean) of a stream of samples.
///
/// # Examples
///
/// ```
/// use flash_sim::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Records a simulated duration, in milliseconds.
    pub fn record_duration_ms(&mut self, d: SimDuration) {
        self.record(d.as_millis_f64());
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample; 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum sample; 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// A power-of-two-bucketed histogram of nanosecond durations.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` ns, with bucket 0 covering `[0, 2)`.
///
/// # Examples
///
/// ```
/// use flash_sim::{LatencyHistogram, SimDuration};
///
/// let mut h = LatencyHistogram::new();
/// h.record(SimDuration::from_nanos(100));
/// h.record(SimDuration::from_nanos(120));
/// assert_eq!(h.total(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; 64],
            total: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let bucket = if ns < 2 {
            0
        } else {
            63 - ns.leading_zeros() as usize
        };
        self.buckets[bucket.min(63)] += 1;
        self.total += 1;
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Merges another histogram into this one, bucket-wise. Buckets are
    /// fixed power-of-two ranges, so merging N shard-local histograms is
    /// exactly equivalent to recording every sample into one histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.total += other.total;
    }

    /// An upper bound on the `q`-quantile (`q` in `[0,1]`), as the top edge
    /// of the bucket containing that quantile. Returns zero for an empty
    /// histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                let upper = if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
                return SimDuration::from_nanos(upper);
            }
        }
        SimDuration::from_nanos(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Counters::new();
        a.incr("x");
        a.add("y", 5);
        let mut b = Counters::new();
        b.add("y", 2);
        b.incr("z");
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 7);
        assert_eq!(a.get("z"), 1);
        assert_eq!(a.iter().count(), 3);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        s.record(10.0);
        s.record(-2.0);
        s.record(4.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.min(), -2.0);
        assert_eq!(s.max(), 10.0);
        assert!((s.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn summary_records_durations() {
        let mut s = Summary::new();
        s.record_duration_ms(SimDuration::from_millis(3));
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn histogram_buckets_by_magnitude() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(0));
        h.record(SimDuration::from_nanos(1));
        h.record(SimDuration::from_nanos(1024));
        assert_eq!(h.total(), 3);
        // Two samples in bucket 0, so the median upper bound is tiny.
        assert!(h.quantile_upper_bound(0.5).as_nanos() <= 1);
        // The max lives in the 1024 bucket: upper edge 2047.
        assert_eq!(h.quantile_upper_bound(1.0).as_nanos(), 2047);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for ns in [3u64, 70, 900, 70_000] {
            a.record(SimDuration::from_nanos(ns));
            combined.record(SimDuration::from_nanos(ns));
        }
        for ns in [1u64, 70, 2_000_000] {
            b.record(SimDuration::from_nanos(ns));
            combined.record(SimDuration::from_nanos(ns));
        }
        a.merge(&b);
        assert_eq!(a, combined);
        assert_eq!(a.total(), 7);
    }

    #[test]
    fn histogram_empty_quantile_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_upper_bound(0.9), SimDuration::ZERO);
    }
}
