//! Simulated time.
//!
//! All simulated time in this workspace is expressed in nanoseconds using the
//! [`SimTime`] newtype. Durations use [`SimDuration`]. Both are thin wrappers
//! around `u64` with saturating arithmetic so that pathological parameter
//! choices degrade gracefully instead of panicking in release builds.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute point in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use flash_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use flash_sim::SimDuration;
///
/// assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from a raw nanosecond count.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Returns the raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this duration expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns this duration expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_ns(f, self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        format_ns(f, self.0)
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(f: &mut fmt::Formatter<'_>, ns: u64) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{}ns", ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
        assert_eq!(SimDuration::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::MAX + SimDuration::from_nanos(10);
        assert_eq!(t, SimTime::MAX);
        let d = SimTime::ZERO - SimTime::from_nanos(5);
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos(u64::MAX)
                .saturating_mul(3)
                .as_nanos(),
            u64::MAX
        );
    }

    #[test]
    fn since_and_sub_agree() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(160);
        assert_eq!(b.since(a), SimDuration::from_nanos(60));
        assert_eq!(b - a, SimDuration::from_nanos(60));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimDuration::from_micros(1) > SimDuration::from_nanos(999));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimDuration::from_nanos(2_500_000).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn float_conversions() {
        assert!((SimDuration::from_millis(5).as_millis_f64() - 5.0).abs() < 1e-12);
        assert!((SimTime::from_nanos(1_500).as_micros_f64() - 1.5).abs() < 1e-12);
    }
}
