//! A bounded, timestamped trace of notable simulation events.
//!
//! Fault-injection experiments are deterministic, so a failure can always
//! be replayed — but understanding *what* went wrong is much faster with a
//! trace of the interesting events (faults applied, triggers fired, phase
//! transitions) than by single-stepping a replay. [`TraceBuffer`] is a
//! fixed-capacity ring buffer: cheap enough to leave enabled, and the tail
//! holds the events leading up to the failure.

use crate::time::SimTime;
use std::collections::VecDeque;

/// A bounded ring buffer of `(time, event)` records.
///
/// # Examples
///
/// ```
/// use flash_sim::{TraceBuffer, SimTime};
///
/// let mut trace = TraceBuffer::new(2);
/// trace.record(SimTime::from_nanos(1), "a");
/// trace.record(SimTime::from_nanos(2), "b");
/// trace.record(SimTime::from_nanos(3), "c"); // evicts "a"
/// let tail: Vec<&str> = trace.iter().map(|(_, e)| *e).collect();
/// assert_eq!(tail, vec!["b", "c"]);
/// ```
#[derive(Clone, Debug)]
pub struct TraceBuffer<E> {
    entries: VecDeque<(SimTime, E)>,
    capacity: usize,
    enabled: bool,
    dropped: u64,
}

impl<E> TraceBuffer<E> {
    /// Creates an enabled trace holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            enabled: true,
            dropped: 0,
        }
    }

    /// Creates a disabled (zero-overhead) trace.
    pub fn disabled() -> Self {
        let mut t = TraceBuffer::new(1);
        t.enabled = false;
        t
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (dropping the oldest record when full).
    pub fn record(&mut self, at: SimTime, event: E) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back((at, event));
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accounts `n` additional evicted records — used when merging another
    /// buffer's retained tail, whose own evictions would otherwise vanish
    /// from the drop accounting.
    pub fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Iterates over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, E)> {
        self.entries.iter()
    }

    /// Clears all retained records.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

impl<E: std::fmt::Debug> TraceBuffer<E> {
    /// Renders the retained records, one per line, for failure reports.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier records dropped ...", self.dropped);
        }
        for (t, e) in &self.entries {
            let _ = writeln!(out, "[{t}] {e:?}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_tail() {
        let mut t = TraceBuffer::new(3);
        for i in 0..10u32 {
            t.record(SimTime::from_nanos(i as u64), i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let tail: Vec<u32> = t.iter().map(|(_, e)| *e).collect();
        assert_eq!(tail, vec![7, 8, 9]);
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceBuffer::disabled();
        t.record(SimTime::ZERO, 1);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        t.set_enabled(true);
        t.record(SimTime::ZERO, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn render_includes_drops_and_times() {
        let mut t = TraceBuffer::new(1);
        t.record(SimTime::from_nanos(5), "x");
        t.record(SimTime::from_nanos(1500), "y");
        let s = t.render();
        assert!(s.contains("1 earlier records dropped"));
        assert!(s.contains("1.500us"));
        assert!(s.contains("\"y\""));
    }

    #[test]
    fn clear_keeps_capacity_and_counters() {
        let mut t = TraceBuffer::new(2);
        t.record(SimTime::ZERO, 1);
        t.clear();
        assert!(t.is_empty());
        t.record(SimTime::ZERO, 2);
        assert_eq!(t.len(), 1);
    }
}
