//! A chaos campaign in miniature: generate randomized multi-fault
//! schedules, run them across worker threads, check the invariant stack,
//! and triage any failure down to a minimal reproducer.
//!
//! ```sh
//! cargo run --release --example campaign [runs] [workers] [master-seed]
//! ```
//!
//! Pass `--sabotage` as a fourth argument to run with the MAGIC firewall
//! disabled — the deliberately seeded bug: the campaign catches the wild
//! write, replays it from its seed, shrinks the schedule and writes a JSON
//! post-mortem under `target/campaign/`.

use flash::campaign::{campaign_dir, run_campaign, triage, CampaignConfig, GeneratorConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let workers: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let master_seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let sabotage = std::env::args().any(|a| a == "--sabotage");

    let cfg = CampaignConfig {
        master_seed,
        runs,
        workers,
        generator: GeneratorConfig {
            hive_chance: 0.15,
            firewall_enabled: !sabotage,
            ..GeneratorConfig::default()
        },
        ..CampaignConfig::default()
    };
    println!(
        "chaos campaign: {runs} runs, {workers} workers, master seed {master_seed}, firewall {}",
        if sabotage {
            "DISABLED (sabotage)"
        } else {
            "enabled"
        }
    );
    let report = run_campaign(&cfg);
    let failures: Vec<_> = report.failures().collect();
    println!(
        "completed in {:.1}s host time: {} violations across {} failing runs",
        report.host_secs,
        report.total_violations(),
        failures.len()
    );
    println!(
        "mid-recovery faults fired: P1={} P2={} P3={} P4={}; during OS recovery: {}",
        report.phase_hits[0],
        report.phase_hits[1],
        report.phase_hits[2],
        report.phase_hits[3],
        report.os_recovery_hits
    );

    for failure in failures.iter().take(3) {
        let t = triage(failure, Some(&campaign_dir()));
        println!(
            "seed {}: reproduced={} shrunk {} -> {} events ({} probe runs), post-mortem: {:?}",
            failure.schedule.seed,
            t.reproduced,
            failure.schedule.events.len(),
            t.shrunk.events.len(),
            t.probe_runs,
            t.dump_path
        );
        for v in &t.shrunk_record.violations {
            println!("  {}: {}", v.invariant, v.details);
        }
    }
    if failures.is_empty() {
        println!("all invariants held.");
    }
}
