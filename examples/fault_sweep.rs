//! A miniature Table 5.3: sweep all five fault types of Table 5.2 with
//! several random seeds each, and report pass/fail counts from the
//! incoherence oracle.
//!
//! ```sh
//! cargo run --release --example fault_sweep [runs-per-type]
//! ```

use flash::core::{random_fault, run_fault_experiment, ExperimentConfig, FaultKind};
use flash::machine::MachineParams;
use flash::sim::DetRng;

fn main() {
    let runs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let params = MachineParams::table_5_1();
    println!("{:<14} {:>8} {:>8}   notes", "fault type", "runs", "failed");
    let mut grand_failed = 0;
    for kind in FaultKind::ALL {
        let mut failed = 0;
        let mut marked_total = 0u64;
        for seed in 0..runs {
            let mut rng = DetRng::new(seed.wrapping_mul(0x9E37) ^ kind as u64);
            let fault = random_fault(kind, params.n_nodes, &mut rng);
            let mut cfg = ExperimentConfig::new(params, seed);
            cfg.fill_ops = 1_000;
            cfg.total_ops = 2_500;
            let out = run_fault_experiment(&cfg, fault);
            if !out.passed() {
                failed += 1;
            }
            marked_total += out.recovery.lines_marked_incoherent;
        }
        grand_failed += failed;
        println!(
            "{:<14} {:>8} {:>8}   avg {} lines marked incoherent",
            format!("{kind:?}"),
            runs,
            failed,
            marked_total / runs.max(1)
        );
    }
    println!(
        "\n{} total failures across {} experiments",
        grand_failed,
        runs * FaultKind::ALL.len() as u64
    );
    assert_eq!(grand_failed, 0, "all validation experiments must pass");
}
