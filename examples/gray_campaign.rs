//! The gray-failure result sheet: a chaos campaign whose schedule mix is
//! heavy in gray faults (fail-slow nodes, degraded memory ranges, lossy
//! links, memory-pool failures), reported per fault class with the
//! three-way containment verdict and detection-latency quantiles.
//!
//! ```sh
//! cargo run --release --example gray_campaign [runs] [workers] [master-seed]
//! ```
//!
//! Exits nonzero if any invariant is violated, so CI can run it as the
//! `gray-chaos-smoke` gate.

use flash::bench::VerdictSheet;
use flash::campaign::{run_campaign, CampaignConfig, GeneratorConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let workers: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let master_seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let cfg = CampaignConfig {
        master_seed,
        runs,
        workers,
        generator: GeneratorConfig {
            gray_chance: 0.45,
            ..GeneratorConfig::default()
        },
        ..CampaignConfig::default()
    };
    println!(
        "gray-failure campaign: {runs} runs, {workers} workers, master seed {master_seed}, \
         gray_chance 0.45"
    );
    let report = run_campaign(&cfg);

    let mut sheet = VerdictSheet::new();
    for r in &report.records {
        sheet.tally(r);
    }

    println!(
        "\ncompleted in {:.1}s host time: {} violations across {} runs\n",
        report.host_secs,
        report.total_violations(),
        report.records.len()
    );
    print!("{}", sheet.verdict_table());
    println!();
    print!("{}", sheet.detection_summary());

    for failure in report.failures().take(3) {
        println!("\nFAIL seed {}:", failure.schedule.seed);
        for v in &failure.violations {
            println!("  {}: {}", v.invariant, v.details);
        }
    }
    if report.total_violations() > 0 {
        std::process::exit(1);
    }
    println!("\nall invariants held across the gray-failure mix.");
}
