//! The gray-failure result sheet: a chaos campaign whose schedule mix is
//! heavy in gray faults (fail-slow nodes, degraded memory ranges, lossy
//! links, memory-pool failures), reported per fault class with the
//! three-way containment verdict and detection-latency quantiles.
//!
//! ```sh
//! cargo run --release --example gray_campaign [runs] [workers] [master-seed]
//! ```
//!
//! Exits nonzero if any invariant is violated, so CI can run it as the
//! `gray-chaos-smoke` gate.

use flash::campaign::{run_campaign, CampaignConfig, GeneratorConfig, RunRecord, Verdict};
use flash::machine::FaultSpec;
use flash::obs::latency_summary;
use flash::sim::{LatencyHistogram, SimDuration};

/// The fault classes of the sheet, in row order. A run is tallied in every
/// class that appears anywhere in its schedule (multi-faults included), so
/// the rows answer "when this class was present, what happened?".
const CLASSES: [&str; 5] = [
    "fail_stop",
    "fail_slow",
    "degraded_memory",
    "lossy_link",
    "pool_failure",
];

fn collect_classes(f: &FaultSpec, out: &mut [bool; 5]) {
    match f {
        FaultSpec::FailSlow(..) => out[1] = true,
        FaultSpec::DegradedMemory(..) => out[2] = true,
        FaultSpec::LossyLink(..) => out[3] = true,
        FaultSpec::PoolFailure { .. } => out[4] = true,
        FaultSpec::Multi(list) => {
            for m in list {
                collect_classes(m, out);
            }
        }
        _ => out[0] = true,
    }
}

#[derive(Default)]
struct ClassRow {
    runs: u64,
    contained: u64,
    detected: u64,
    survived: u64,
    violations: u64,
    detect: LatencyHistogram,
}

impl ClassRow {
    fn tally(&mut self, r: &RunRecord) {
        self.runs += 1;
        match r.verdict {
            Verdict::Contained => self.contained += 1,
            Verdict::DetectedRecovered => self.detected += 1,
            Verdict::SurvivedDegraded => self.survived += 1,
        }
        self.violations += r.violations.len() as u64;
        if let Some(ns) = r.detect_latency_ns {
            self.detect.record(SimDuration::from_nanos(ns));
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let workers: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let master_seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let cfg = CampaignConfig {
        master_seed,
        runs,
        workers,
        generator: GeneratorConfig {
            gray_chance: 0.45,
            ..GeneratorConfig::default()
        },
    };
    println!(
        "gray-failure campaign: {runs} runs, {workers} workers, master seed {master_seed}, \
         gray_chance 0.45"
    );
    let report = run_campaign(&cfg);

    let mut rows: Vec<ClassRow> = (0..CLASSES.len()).map(|_| ClassRow::default()).collect();
    let mut overall = ClassRow::default();
    for r in &report.records {
        let mut present = [false; 5];
        for e in &r.schedule.events {
            collect_classes(&e.fault, &mut present);
        }
        for (i, p) in present.iter().enumerate() {
            if *p {
                rows[i].tally(r);
            }
        }
        overall.tally(r);
    }

    println!(
        "\ncompleted in {:.1}s host time: {} violations across {} runs\n",
        report.host_secs,
        report.total_violations(),
        report.records.len()
    );
    println!(
        "{:<16} {:>5} {:>10} {:>19} {:>18} {:>11}",
        "fault class", "runs", "contained", "detected-recovered", "survived-degraded", "violations"
    );
    for (name, row) in CLASSES.iter().zip(&rows) {
        println!(
            "{name:<16} {:>5} {:>10} {:>19} {:>18} {:>11}",
            row.runs, row.contained, row.detected, row.survived, row.violations
        );
    }
    println!();
    print!(
        "{}",
        latency_summary("detection latency (all runs)", &overall.detect)
    );
    for (name, row) in CLASSES.iter().zip(&rows) {
        print!(
            "{}",
            latency_summary(&format!("detection latency ({name})"), &row.detect)
        );
    }

    for failure in report.failures().take(3) {
        println!("\nFAIL seed {}:", failure.schedule.seed);
        for v in &failure.violations {
            println!("  {}: {}", v.invariant, v.details);
        }
    }
    if report.total_violations() > 0 {
        std::process::exit(1);
    }
    println!("\nall invariants held across the gray-failure mix.");
}
