//! The KV serving SLO result sheet: a chaos campaign in which every run
//! hosts the replicated `hive-kv` workload, faults (fail-stop and the gray
//! classes) strike mid-traffic, and the user-visible service levels —
//! goodput, latency quantiles, error fraction — are reported per fault
//! class alongside the containment verdicts.
//!
//! ```sh
//! cargo run --release --example kv_slo [runs] [workers] [master-seed]
//! ```
//!
//! The campaign is run twice, with one worker and with the requested
//! worker count, and the per-run merged trace hashes must match
//! bit-for-bit — the serving workload obeys the same determinism
//! discipline as everything else. Exits nonzero on any invariant
//! violation, missing fault-class coverage, or hash mismatch, so CI can
//! run it as the `kv-slo-smoke` gate.

use flash::bench::{run_fault_classes, ResultSheet, VerdictSheet, FAULT_CLASSES};
use flash::campaign::{run_campaign, CampaignConfig, GeneratorConfig, RunRecord};
use flash::obs::Quantiles;
use flash::sim::LatencyHistogram;

/// Per-fault-class service-level aggregate.
#[derive(Default)]
struct SloRow {
    runs: u64,
    arrivals: u64,
    ok: u64,
    errors: u64,
    unserved: u64,
    chunks_lost: u64,
    duration_ns: u64,
    lat_ok: LatencyHistogram,
}

impl SloRow {
    fn tally(&mut self, r: &RunRecord) {
        let Some(kv) = &r.kv else { return };
        self.runs += 1;
        self.arrivals += kv.arrivals;
        self.ok += kv.ok;
        self.errors += kv.errors;
        self.unserved += kv.unserved;
        self.chunks_lost += kv.chunks_lost;
        self.duration_ns += kv.duration_ns;
        self.lat_ok.merge(&kv.lat_ok);
    }

    /// Successful requests per simulated second: total successes over the
    /// class's total simulated time (runs weighted by their duration).
    fn goodput_rps(&self) -> f64 {
        if self.duration_ns == 0 {
            return 0.0;
        }
        self.ok as f64 * 1e9 / self.duration_ns as f64
    }

    /// Fraction of budgeted requests that surfaced as user-visible errors.
    fn error_fraction(&self) -> f64 {
        let total = self.arrivals + self.unserved;
        if total == 0 {
            return 0.0;
        }
        (self.errors + self.unserved) as f64 / total as f64
    }

    fn values(&self) -> Vec<f64> {
        let q = Quantiles::of(&self.lat_ok);
        vec![
            self.runs as f64,
            self.goodput_rps(),
            q.p50_ns as f64 / 1e6,
            q.p95_ns as f64 / 1e6,
            q.p99_ns as f64 / 1e6,
            q.p999_ns as f64 / 1e6,
            self.error_fraction(),
            self.chunks_lost as f64,
        ]
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let runs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(200);
    let workers: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
    let master_seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);

    let cfg = CampaignConfig {
        master_seed,
        runs,
        workers,
        generator: GeneratorConfig {
            min_nodes: 8,
            max_nodes: 8,
            kv_chance: 1.0,
            gray_chance: 0.5,
            ..GeneratorConfig::default()
        },
        ..CampaignConfig::default()
    };
    println!(
        "kv serving SLO campaign: {runs} runs, {workers} workers, master seed {master_seed}, \
         kv_chance 1.0, gray_chance 0.5"
    );
    let report = run_campaign(&cfg);
    println!(
        "completed in {:.1}s host time: {} violations across {} runs",
        report.host_secs,
        report.total_violations(),
        report.records.len()
    );

    // Determinism gate: the identical campaign with one worker must
    // produce bit-identical per-run merged trace hashes.
    let seq = run_campaign(&CampaignConfig { workers: 1, ..cfg });
    let hashes = |r: &flash::campaign::CampaignReport| -> Vec<(u64, u64)> {
        r.records
            .iter()
            .map(|rec| (rec.schedule.seed, rec.trace_hash))
            .collect()
    };
    let hash_ok = hashes(&report) == hashes(&seq);
    println!(
        "determinism: 1-vs-{workers}-worker trace hashes {}",
        if hash_ok { "identical" } else { "DIVERGED" }
    );

    let mut verdicts = VerdictSheet::new();
    let mut slo_rows: Vec<SloRow> = (0..FAULT_CLASSES.len())
        .map(|_| SloRow::default())
        .collect();
    let mut overall = SloRow::default();
    for r in &report.records {
        verdicts.tally(r);
        overall.tally(r);
        for (i, p) in run_fault_classes(r).iter().enumerate() {
            if *p {
                slo_rows[i].tally(r);
            }
        }
    }

    println!();
    print!("{}", verdicts.verdict_table());
    println!();
    println!(
        "{:<16} {:>5} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
        "fault class",
        "runs",
        "goodput_rps",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "p999_ms",
        "err_frac",
        "lost"
    );
    let print_slo = |name: &str, row: &SloRow| {
        let v = row.values();
        println!(
            "{name:<16} {:>5} {:>12.0} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.4} {:>6}",
            v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]
        );
    };
    for (name, row) in FAULT_CLASSES.iter().zip(&slo_rows) {
        print_slo(name, row);
    }
    print_slo("all_runs", &overall);
    println!();
    print!("{}", verdicts.detection_summary());

    let mut sheet = ResultSheet::new(
        "kv_slo",
        "hive-kv serving SLOs through faults (beyond the paper)",
        &[
            "runs",
            "goodput_rps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "p999_ms",
            "err_frac",
            "chunks_lost",
        ],
    );
    for (name, row) in FAULT_CLASSES.iter().zip(&slo_rows) {
        sheet.push(*name, &row.values());
    }
    sheet.push("all_runs", &overall.values());
    sheet.write();

    for failure in report.failures().take(3) {
        println!("\nFAIL seed {}:", failure.schedule.seed);
        for v in &failure.violations {
            println!("  {}: {}", v.invariant, v.details);
        }
    }

    // Coverage gate: the sheet must actually exercise fail-stop plus at
    // least two gray classes (sized-down smoke runs included).
    let gray_covered = slo_rows[1..].iter().filter(|r| r.runs > 0).count();
    let covered = slo_rows[0].runs > 0 && gray_covered >= 2;
    if !covered {
        println!(
            "\ninsufficient fault-class coverage: fail_stop runs {}, gray classes hit {gray_covered}",
            slo_rows[0].runs
        );
    }
    if report.total_violations() > 0 || !hash_ok || !covered {
        std::process::exit(1);
    }
    println!("\nall serving invariants held; trace hashes identical across worker counts.");
}
