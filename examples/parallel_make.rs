//! The paper's end-to-end experiment (Section 5.2, Table 5.4): a parallel
//! make running across eight Hive cells — cell 0 doubling as the file
//! server — with a hardware fault injected while all compiles are running.
//!
//! ```sh
//! cargo run --release --example parallel_make [fault] [seed]
//! ```
//!
//! `fault` is one of `node`, `router`, `link`, `loop`, `false-alarm`
//! (default `node`).

use flash::core::RecoveryConfig;
use flash::hive::{run_parallel_make, HiveConfig, TaskState};
use flash::machine::{FaultSpec, MachineParams};
use flash::net::{NodeId, RouterId};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kind = args.get(1).map(String::as_str).unwrap_or("node");
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    let fault = match kind {
        "node" => FaultSpec::Node(NodeId(5)),
        "router" => FaultSpec::Router(RouterId(6)),
        "link" => FaultSpec::Link(RouterId(1), RouterId(2)),
        "loop" => FaultSpec::InfiniteLoop(NodeId(3)),
        "false-alarm" => FaultSpec::FalseAlarm(NodeId(2)),
        other => {
            eprintln!("unknown fault kind {other:?}; use node|router|link|loop|false-alarm");
            std::process::exit(2);
        }
    };

    let params = MachineParams::table_5_1(); // 8 nodes
    let hive = HiveConfig::default(); // 8 cells, cell 0 = file server
    println!(
        "parallel make: {} cells on {} nodes, {} files/compile; injecting {fault:?} (seed {seed})\n",
        hive.n_cells, params.n_nodes, hive.files_per_task
    );

    let out = run_parallel_make(params, &hive, RecoveryConfig::default(), Some(fault), seed);

    for c in &out.compiles {
        let status = match c.state {
            TaskState::Completed => "completed",
            TaskState::Failed => "FAILED   ",
            TaskState::Running => "killed   ",
        };
        println!(
            "cell {:>2}: {status}  ({} files)  {}",
            c.cell,
            c.files_done,
            if c.affected {
                "[affected by fault]"
            } else {
                ""
            }
        );
    }
    println!();
    match out.recovery.phases.total() {
        Some(hw) => {
            println!("hardware recovery: {:>8.3} ms", hw.as_millis_f64());
            println!("OS recovery:       {:>8.3} ms", out.os_time.as_millis_f64());
            println!(
                "processes suspended for {:>8.3} ms total",
                out.suspension_time().unwrap().as_millis_f64()
            );
        }
        None => println!("no recovery ran (fault stayed latent)"),
    }
    println!(
        "incoherent lines reinitialized by the OS: {}",
        out.lines_reinitialized
    );
    println!(
        "\nunaffected compiles all completed: {}",
        out.unaffected_all_completed()
    );
    assert!(out.finished);
}
