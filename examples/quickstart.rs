//! Quickstart: build the paper's 8-node FLASH machine, run a shared-memory
//! workload, kill a node mid-run, and watch the distributed recovery
//! algorithm bring the survivors back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flash::core::{run_fault_experiment, ExperimentConfig};
use flash::machine::{FaultSpec, MachineParams};
use flash::net::NodeId;

fn main() {
    // The Table 5.1 configuration: 8 nodes, 1 MB L2, 1 MB memory per node,
    // 2D mesh.
    let params = MachineParams::table_5_1();
    let mut cfg = ExperimentConfig::new(params, 42);
    cfg.fill_ops = 2_000; // random cache-fill prelude per processor
    cfg.total_ops = 5_000;

    println!(
        "machine: {} nodes, {} MB L2, {} MB/node",
        params.n_nodes, params.l2_mb, params.mem_mb_per_node
    );
    println!("injecting: node 3 fails while all processors are running\n");

    let outcome = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(3)));

    let p = &outcome.recovery.phases;
    println!(
        "recovery triggered at   {}",
        p.triggered_at.expect("fault was detected")
    );
    println!(
        "P1  initiation          {:>10.3} ms",
        p.p1().unwrap().as_millis_f64()
    );
    println!(
        "P2  dissemination       {:>10.3} ms (cumulative)",
        p.p1_2().unwrap().as_millis_f64()
    );
    println!(
        "P3  interconnect        {:>10.3} ms (cumulative)",
        p.p1_3().unwrap().as_millis_f64()
    );
    println!(
        "P4  coherence/total     {:>10.3} ms (cumulative)",
        p.total().unwrap().as_millis_f64()
    );
    println!();
    println!("restarts:                {}", outcome.recovery.restarts);
    println!(
        "flush writebacks:        {}",
        outcome.recovery.flush_writebacks
    );
    println!(
        "lines marked incoherent: {}",
        outcome.recovery.lines_marked_incoherent
    );
    println!(
        "nodes resumed:           {}",
        outcome.recovery.nodes_resumed
    );
    println!("bus errors (post-fault): {}", outcome.bus_errors);
    println!();
    println!("oracle validation:       {}", outcome.validation);
    assert!(outcome.passed(), "recovery must validate cleanly");
    println!("\nPASS: no over-marking, no silent corruption.");
}
