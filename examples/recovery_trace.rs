//! Trace the four recovery phases on a larger machine after a compound
//! fault — a "cabinet power loss" taking out a block of nodes and their
//! routers — and compare mesh against hypercube dissemination.
//!
//! ```sh
//! cargo run --release --example recovery_trace [nodes]
//! ```

use flash::core::{run_fault_experiment, ExperimentConfig};
use flash::machine::{FaultSpec, MachineParams, TopologyKind};
use flash::net::{NodeId, RouterId};

fn cabinet_loss(nodes: &[u16]) -> FaultSpec {
    FaultSpec::Multi(
        nodes
            .iter()
            .flat_map(|&n| [FaultSpec::Node(NodeId(n)), FaultSpec::Router(RouterId(n))])
            .collect(),
    )
}

fn run(topology: TopologyKind, n: usize, fault: FaultSpec) {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = n;
    params.topology = topology;
    let mut cfg = ExperimentConfig::new(params, 99);
    cfg.fill_ops = 100;
    cfg.total_ops = 3_000;
    let out = run_fault_experiment(&cfg, fault);
    let p = &out.recovery.phases;
    println!(
        "{:<10} P1 {:>8.3} ms | P2 {:>8.3} ms | P3 {:>8.3} ms | P4 {:>8.3} ms | total {:>8.3} ms | marked {} | restarts {} | {}",
        format!("{topology:?}"),
        p.p1().map(|d| d.as_millis_f64()).unwrap_or(f64::NAN),
        p.p1_2()
            .zip(p.p1())
            .map(|(b, a)| (b - a).as_millis_f64())
            .unwrap_or(f64::NAN),
        p.p1_3()
            .zip(p.p1_2())
            .map(|(b, a)| (b - a).as_millis_f64())
            .unwrap_or(f64::NAN),
        p.total()
            .zip(p.p1_3())
            .map(|(b, a)| (b - a).as_millis_f64())
            .unwrap_or(f64::NAN),
        p.total().map(|d| d.as_millis_f64()).unwrap_or(f64::NAN),
        out.recovery.lines_marked_incoherent,
        out.recovery.restarts,
        if out.passed() { "PASS" } else { "FAIL" }
    );
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    assert!(n.is_power_of_two() && n >= 8, "use a power of two >= 8");

    // A 2x2 block of the mesh loses power: nodes and routers gone.
    let w = flash::core::mesh_width(n) as u16;
    let block = [w + 1, w + 2, 2 * w + 1, 2 * w + 2];
    println!("{n}-node machine; cabinet loss takes out nodes {block:?} (controllers + routers)\n");
    println!("per-phase times (P2..P4 shown as increments):");
    run(TopologyKind::Mesh2D, n, cabinet_loss(&block));
    run(TopologyKind::Hypercube, n, cabinet_loss(&block));
    println!("\nThe hypercube's smaller diameter shortens the dissemination phase (P2),");
    println!("matching the paper's Figure 5.5 discussion.");
}
