//! Dump a full structured trace of one fault-recovery run: a Chrome
//! `trace_event` JSON file (load it in Perfetto or `chrome://tracing`)
//! plus the per-node P1–P4 recovery timeline table on stdout.
//!
//! ```sh
//! cargo run --release --example trace_dump [nodes] [out.trace.json]
//! ```

use flash::core::{build_machine, RecoveryConfig};
use flash::machine::{FaultSpec, MachineParams, RandomFill};
use flash::net::NodeId;
use flash::obs::{chrome_trace_json, phase_timeline, Recorder};
use flash::sim::{RunOutcome, SimDuration};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| format!("recovery_{n}n.trace.json"));
    assert!(n.is_power_of_two() && n >= 4, "use a power of two >= 4");

    let mut params = MachineParams::table_5_1();
    params.n_nodes = n;
    let layout = params.layout();
    let protected = params.protected_lines;
    let mut m = build_machine(
        params,
        RecoveryConfig::default(),
        move |_| {
            Box::new(RandomFill::valid_system_range(
                3_000, 0.5, layout, protected,
            ))
        },
        7,
    );

    // Swap in a deep recorder with every domain (and metrics) enabled so
    // the dump captures the hot domains the default mask keeps off.
    let mut rec = Recorder::with_capacity(1 << 16);
    rec.enable_all();
    m.st_mut().obs = rec;

    m.set_event_budget(2_000_000_000);
    m.start();

    // Fill caches briefly, then take out a node mid-workload.
    m.run_for(SimDuration::from_micros(50));
    let inject_at = m.now() + SimDuration::from_nanos(1);
    m.schedule_fault(inject_at, FaultSpec::Node(NodeId(1)));
    let outcome = m.run_until(m.now() + SimDuration::from_secs(20));
    assert_eq!(outcome, RunOutcome::Drained, "run must reach quiescence");

    let obs = &m.st().obs;
    let json = chrome_trace_json(obs);
    std::fs::write(&out_path, &json).expect("write trace file");

    println!(
        "{n}-node machine, node 1 failed at {} ns; {} trace events ({} dropped)",
        inject_at.as_nanos(),
        obs.merged().len(),
        obs.dropped_total()
    );
    println!("\nper-node recovery phase timeline:");
    println!("{}", phase_timeline(obs));
    println!("metrics snapshot:\n{}", obs.metrics.snapshot_json());
    println!(
        "wrote {} ({} bytes) — load it in Perfetto or chrome://tracing",
        out_path,
        json.len()
    );
}
