//! # flash — hardware fault containment for scalable shared-memory multiprocessors
//!
//! A from-scratch Rust reproduction of *Hardware Fault Containment in
//! Scalable Shared-Memory Multiprocessors* (Teodosiu, Baxter, Govil, Chapin,
//! Rosenblum, Horowitz — ISCA 1997): the FLASH-style cc-NUMA machine
//! simulator, the MAGIC node controller's fault-containment features, the
//! four-phase distributed recovery algorithm, and a Hive-like cell
//! operating-system model, together with the paper's complete
//! fault-injection evaluation.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `flash-sim` | discrete-event simulation kernel |
//! | [`obs`] | `flash-obs` | structured tracing, metrics, timeline exporters |
//! | [`net`] | `flash-net` | mesh/hypercube interconnect, routers, failures |
//! | [`coherence`] | `flash-coherence` | caches, directory protocol |
//! | [`magic`] | `flash-magic` | node controller + containment features |
//! | [`machine`] | `flash-machine` | assembled machine, fault injection, oracle |
//! | [`core`] | `flash-core` | **the recovery algorithm** + experiment harness |
//! | [`hive`] | `flash-hive` | cell OS model, parallel-make experiments |
//! | [`campaign`] | `flash-campaign` | randomized chaos campaigns, invariant stack, triage |
//! | [`hivekv`] | `flash-hivekv` | replicated KV serving workload with SLOs through faults |
//! | [`mod@bench`] | `flash-bench` | result sheets, sweep engine, per-class fault tallies |
//!
//! ## Quickstart
//!
//! ```no_run
//! use flash::core::{run_fault_experiment, ExperimentConfig};
//! use flash::machine::{FaultSpec, MachineParams};
//! use flash::net::NodeId;
//!
//! // Inject a node failure into the paper's 8-node machine and verify
//! // recovery against the incoherence oracle.
//! let cfg = ExperimentConfig::new(MachineParams::table_5_1(), 1);
//! let outcome = run_fault_experiment(&cfg, FaultSpec::Node(NodeId(3)));
//! assert!(outcome.passed());
//! println!("hardware recovery: {:?}", outcome.recovery.phases.total());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! benchmark harness regenerating every table and figure of the paper.

#![warn(missing_docs)]

pub use flash_bench as bench;
pub use flash_campaign as campaign;
pub use flash_coherence as coherence;
pub use flash_core as core;
pub use flash_hive as hive;
pub use flash_hivekv as hivekv;
pub use flash_machine as machine;
pub use flash_magic as magic;
pub use flash_net as net;
pub use flash_obs as obs;
pub use flash_sim as sim;
