/root/repo/target/debug/deps/ablation_bft_hints-4f359ab78d588519.d: crates/bench/benches/ablation_bft_hints.rs Cargo.toml

/root/repo/target/debug/deps/libablation_bft_hints-4f359ab78d588519.rmeta: crates/bench/benches/ablation_bft_hints.rs Cargo.toml

crates/bench/benches/ablation_bft_hints.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
