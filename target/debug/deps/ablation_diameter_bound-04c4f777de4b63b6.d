/root/repo/target/debug/deps/ablation_diameter_bound-04c4f777de4b63b6.d: crates/bench/benches/ablation_diameter_bound.rs Cargo.toml

/root/repo/target/debug/deps/libablation_diameter_bound-04c4f777de4b63b6.rmeta: crates/bench/benches/ablation_diameter_bound.rs Cargo.toml

crates/bench/benches/ablation_diameter_bound.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
