/root/repo/target/debug/deps/ablation_reliable_interconnect-76ad6698ed56bcf0.d: crates/bench/benches/ablation_reliable_interconnect.rs Cargo.toml

/root/repo/target/debug/deps/libablation_reliable_interconnect-76ad6698ed56bcf0.rmeta: crates/bench/benches/ablation_reliable_interconnect.rs Cargo.toml

crates/bench/benches/ablation_reliable_interconnect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
