/root/repo/target/debug/deps/ablation_speculative_ping-b66f3068ae0bf84e.d: crates/bench/benches/ablation_speculative_ping.rs Cargo.toml

/root/repo/target/debug/deps/libablation_speculative_ping-b66f3068ae0bf84e.rmeta: crates/bench/benches/ablation_speculative_ping.rs Cargo.toml

crates/bench/benches/ablation_speculative_ping.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
