/root/repo/target/debug/deps/ablation_upgrade-06f20137076ef4e4.d: crates/bench/benches/ablation_upgrade.rs Cargo.toml

/root/repo/target/debug/deps/libablation_upgrade-06f20137076ef4e4.rmeta: crates/bench/benches/ablation_upgrade.rs Cargo.toml

crates/bench/benches/ablation_upgrade.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
