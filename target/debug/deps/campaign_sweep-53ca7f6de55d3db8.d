/root/repo/target/debug/deps/campaign_sweep-53ca7f6de55d3db8.d: crates/bench/benches/campaign_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libcampaign_sweep-53ca7f6de55d3db8.rmeta: crates/bench/benches/campaign_sweep.rs Cargo.toml

crates/bench/benches/campaign_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
