/root/repo/target/debug/deps/containment-79d39717d998706d.d: tests/containment.rs

/root/repo/target/debug/deps/containment-79d39717d998706d: tests/containment.rs

tests/containment.rs:
