/root/repo/target/debug/deps/containment-d6dc096c99119b1a.d: tests/containment.rs Cargo.toml

/root/repo/target/debug/deps/libcontainment-d6dc096c99119b1a.rmeta: tests/containment.rs Cargo.toml

tests/containment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
