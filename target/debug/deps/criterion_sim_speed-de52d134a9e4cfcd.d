/root/repo/target/debug/deps/criterion_sim_speed-de52d134a9e4cfcd.d: crates/bench/benches/criterion_sim_speed.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion_sim_speed-de52d134a9e4cfcd.rmeta: crates/bench/benches/criterion_sim_speed.rs Cargo.toml

crates/bench/benches/criterion_sim_speed.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
