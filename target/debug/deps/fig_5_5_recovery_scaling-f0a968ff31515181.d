/root/repo/target/debug/deps/fig_5_5_recovery_scaling-f0a968ff31515181.d: crates/bench/benches/fig_5_5_recovery_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig_5_5_recovery_scaling-f0a968ff31515181.rmeta: crates/bench/benches/fig_5_5_recovery_scaling.rs Cargo.toml

crates/bench/benches/fig_5_5_recovery_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
