/root/repo/target/debug/deps/fig_5_6_p4_scaling-3cbe672b3c6bfb57.d: crates/bench/benches/fig_5_6_p4_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig_5_6_p4_scaling-3cbe672b3c6bfb57.rmeta: crates/bench/benches/fig_5_6_p4_scaling.rs Cargo.toml

crates/bench/benches/fig_5_6_p4_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
