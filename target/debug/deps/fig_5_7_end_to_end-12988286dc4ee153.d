/root/repo/target/debug/deps/fig_5_7_end_to_end-12988286dc4ee153.d: crates/bench/benches/fig_5_7_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libfig_5_7_end_to_end-12988286dc4ee153.rmeta: crates/bench/benches/fig_5_7_end_to_end.rs Cargo.toml

crates/bench/benches/fig_5_7_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
