/root/repo/target/debug/deps/flash-66662fb240653884.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflash-66662fb240653884.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
