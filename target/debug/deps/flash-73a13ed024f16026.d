/root/repo/target/debug/deps/flash-73a13ed024f16026.d: src/lib.rs

/root/repo/target/debug/deps/libflash-73a13ed024f16026.rlib: src/lib.rs

/root/repo/target/debug/deps/libflash-73a13ed024f16026.rmeta: src/lib.rs

src/lib.rs:
