/root/repo/target/debug/deps/flash-95476613dda53274.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libflash-95476613dda53274.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
