/root/repo/target/debug/deps/flash-a1b5e6a85687b11a.d: src/lib.rs

/root/repo/target/debug/deps/flash-a1b5e6a85687b11a: src/lib.rs

src/lib.rs:
