/root/repo/target/debug/deps/flash_bench-3186b838a9403948.d: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/debug/deps/libflash_bench-3186b838a9403948.rlib: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/debug/deps/libflash_bench-3186b838a9403948.rmeta: crates/bench/src/lib.rs crates/bench/src/results.rs

crates/bench/src/lib.rs:
crates/bench/src/results.rs:
