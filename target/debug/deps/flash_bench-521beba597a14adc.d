/root/repo/target/debug/deps/flash_bench-521beba597a14adc.d: crates/bench/src/lib.rs crates/bench/src/results.rs Cargo.toml

/root/repo/target/debug/deps/libflash_bench-521beba597a14adc.rmeta: crates/bench/src/lib.rs crates/bench/src/results.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/results.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
