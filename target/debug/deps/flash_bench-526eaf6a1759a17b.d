/root/repo/target/debug/deps/flash_bench-526eaf6a1759a17b.d: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/debug/deps/flash_bench-526eaf6a1759a17b: crates/bench/src/lib.rs crates/bench/src/results.rs

crates/bench/src/lib.rs:
crates/bench/src/results.rs:
