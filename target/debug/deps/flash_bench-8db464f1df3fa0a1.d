/root/repo/target/debug/deps/flash_bench-8db464f1df3fa0a1.d: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/debug/deps/libflash_bench-8db464f1df3fa0a1.rlib: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/debug/deps/libflash_bench-8db464f1df3fa0a1.rmeta: crates/bench/src/lib.rs crates/bench/src/results.rs

crates/bench/src/lib.rs:
crates/bench/src/results.rs:
