/root/repo/target/debug/deps/flash_bench-ad8e7794deabca45.d: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/debug/deps/flash_bench-ad8e7794deabca45: crates/bench/src/lib.rs crates/bench/src/results.rs

crates/bench/src/lib.rs:
crates/bench/src/results.rs:
