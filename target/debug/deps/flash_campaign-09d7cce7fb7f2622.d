/root/repo/target/debug/deps/flash_campaign-09d7cce7fb7f2622.d: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs Cargo.toml

/root/repo/target/debug/deps/libflash_campaign-09d7cce7fb7f2622.rmeta: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs Cargo.toml

crates/campaign/src/lib.rs:
crates/campaign/src/invariants.rs:
crates/campaign/src/runner.rs:
crates/campaign/src/schedule.rs:
crates/campaign/src/triage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
