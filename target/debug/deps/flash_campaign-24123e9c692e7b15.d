/root/repo/target/debug/deps/flash_campaign-24123e9c692e7b15.d: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs

/root/repo/target/debug/deps/flash_campaign-24123e9c692e7b15: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs

crates/campaign/src/lib.rs:
crates/campaign/src/invariants.rs:
crates/campaign/src/runner.rs:
crates/campaign/src/schedule.rs:
crates/campaign/src/triage.rs:
