/root/repo/target/debug/deps/flash_campaign-28418a92a2e573d8.d: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs

/root/repo/target/debug/deps/libflash_campaign-28418a92a2e573d8.rlib: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs

/root/repo/target/debug/deps/libflash_campaign-28418a92a2e573d8.rmeta: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs

crates/campaign/src/lib.rs:
crates/campaign/src/invariants.rs:
crates/campaign/src/runner.rs:
crates/campaign/src/schedule.rs:
crates/campaign/src/triage.rs:
