/root/repo/target/debug/deps/flash_coherence-591e9c04c992aed2.d: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs Cargo.toml

/root/repo/target/debug/deps/libflash_coherence-591e9c04c992aed2.rmeta: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs Cargo.toml

crates/coherence/src/lib.rs:
crates/coherence/src/cache.rs:
crates/coherence/src/directory.rs:
crates/coherence/src/line.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/nodeset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
