/root/repo/target/debug/deps/flash_coherence-aa571b453851deb6.d: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs

/root/repo/target/debug/deps/flash_coherence-aa571b453851deb6: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs

crates/coherence/src/lib.rs:
crates/coherence/src/cache.rs:
crates/coherence/src/directory.rs:
crates/coherence/src/line.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/nodeset.rs:
