/root/repo/target/debug/deps/flash_coherence-fef70c8825d7f522.d: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs

/root/repo/target/debug/deps/libflash_coherence-fef70c8825d7f522.rlib: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs

/root/repo/target/debug/deps/libflash_coherence-fef70c8825d7f522.rmeta: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs

crates/coherence/src/lib.rs:
crates/coherence/src/cache.rs:
crates/coherence/src/directory.rs:
crates/coherence/src/line.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/nodeset.rs:
