/root/repo/target/debug/deps/flash_core-76570b511bdce86a.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs

/root/repo/target/debug/deps/flash_core-76570b511bdce86a: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/ext.rs:
crates/core/src/msg.rs:
crates/core/src/view.rs:
