/root/repo/target/debug/deps/flash_core-7b8286a7b7c64126.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs

/root/repo/target/debug/deps/libflash_core-7b8286a7b7c64126.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs

/root/repo/target/debug/deps/libflash_core-7b8286a7b7c64126.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/ext.rs:
crates/core/src/msg.rs:
crates/core/src/view.rs:
