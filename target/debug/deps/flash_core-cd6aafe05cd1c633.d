/root/repo/target/debug/deps/flash_core-cd6aafe05cd1c633.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs Cargo.toml

/root/repo/target/debug/deps/libflash_core-cd6aafe05cd1c633.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/ext.rs:
crates/core/src/msg.rs:
crates/core/src/view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
