/root/repo/target/debug/deps/flash_hive-1ba441b3fb2b7181.d: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs

/root/repo/target/debug/deps/libflash_hive-1ba441b3fb2b7181.rlib: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs

/root/repo/target/debug/deps/libflash_hive-1ba441b3fb2b7181.rmeta: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs

crates/hive/src/lib.rs:
crates/hive/src/cells.rs:
crates/hive/src/experiment.rs:
crates/hive/src/os.rs:
crates/hive/src/task.rs:
