/root/repo/target/debug/deps/flash_hive-513023b07be06c03.d: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs

/root/repo/target/debug/deps/flash_hive-513023b07be06c03: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs

crates/hive/src/lib.rs:
crates/hive/src/cells.rs:
crates/hive/src/experiment.rs:
crates/hive/src/os.rs:
crates/hive/src/task.rs:
