/root/repo/target/debug/deps/flash_hive-57df7d25bd57a196.d: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libflash_hive-57df7d25bd57a196.rmeta: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs Cargo.toml

crates/hive/src/lib.rs:
crates/hive/src/cells.rs:
crates/hive/src/experiment.rs:
crates/hive/src/os.rs:
crates/hive/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
