/root/repo/target/debug/deps/flash_machine-47c2c614298871f3.d: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs

/root/repo/target/debug/deps/libflash_machine-47c2c614298871f3.rlib: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs

/root/repo/target/debug/deps/libflash_machine-47c2c614298871f3.rmeta: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs

crates/machine/src/lib.rs:
crates/machine/src/fault.rs:
crates/machine/src/machine.rs:
crates/machine/src/node.rs:
crates/machine/src/oracle.rs:
crates/machine/src/params.rs:
crates/machine/src/payload.rs:
crates/machine/src/workload.rs:
