/root/repo/target/debug/deps/flash_machine-ae3a2839781ebb48.d: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs

/root/repo/target/debug/deps/flash_machine-ae3a2839781ebb48: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs

crates/machine/src/lib.rs:
crates/machine/src/fault.rs:
crates/machine/src/machine.rs:
crates/machine/src/node.rs:
crates/machine/src/oracle.rs:
crates/machine/src/params.rs:
crates/machine/src/payload.rs:
crates/machine/src/workload.rs:
