/root/repo/target/debug/deps/flash_machine-b061c5120f9ba3c5.d: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libflash_machine-b061c5120f9ba3c5.rmeta: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs Cargo.toml

crates/machine/src/lib.rs:
crates/machine/src/fault.rs:
crates/machine/src/machine.rs:
crates/machine/src/node.rs:
crates/machine/src/oracle.rs:
crates/machine/src/params.rs:
crates/machine/src/payload.rs:
crates/machine/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
