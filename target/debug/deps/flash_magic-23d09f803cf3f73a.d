/root/repo/target/debug/deps/flash_magic-23d09f803cf3f73a.d: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs Cargo.toml

/root/repo/target/debug/deps/libflash_magic-23d09f803cf3f73a.rmeta: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs Cargo.toml

crates/magic/src/lib.rs:
crates/magic/src/controller.rs:
crates/magic/src/features.rs:
crates/magic/src/uncached.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
