/root/repo/target/debug/deps/flash_magic-26daaaa1e81b58f9.d: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs

/root/repo/target/debug/deps/flash_magic-26daaaa1e81b58f9: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs

crates/magic/src/lib.rs:
crates/magic/src/controller.rs:
crates/magic/src/features.rs:
crates/magic/src/uncached.rs:
