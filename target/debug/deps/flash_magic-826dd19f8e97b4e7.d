/root/repo/target/debug/deps/flash_magic-826dd19f8e97b4e7.d: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs Cargo.toml

/root/repo/target/debug/deps/libflash_magic-826dd19f8e97b4e7.rmeta: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs Cargo.toml

crates/magic/src/lib.rs:
crates/magic/src/controller.rs:
crates/magic/src/features.rs:
crates/magic/src/uncached.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
