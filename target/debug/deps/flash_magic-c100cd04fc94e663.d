/root/repo/target/debug/deps/flash_magic-c100cd04fc94e663.d: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs

/root/repo/target/debug/deps/libflash_magic-c100cd04fc94e663.rlib: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs

/root/repo/target/debug/deps/libflash_magic-c100cd04fc94e663.rmeta: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs

crates/magic/src/lib.rs:
crates/magic/src/controller.rs:
crates/magic/src/features.rs:
crates/magic/src/uncached.rs:
