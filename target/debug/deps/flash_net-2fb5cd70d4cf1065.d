/root/repo/target/debug/deps/flash_net-2fb5cd70d4cf1065.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libflash_net-2fb5cd70d4cf1065.rlib: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/libflash_net-2fb5cd70d4cf1065.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/graph.rs:
crates/net/src/ids.rs:
crates/net/src/packet.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
