/root/repo/target/debug/deps/flash_net-30db439f65a41952.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/debug/deps/flash_net-30db439f65a41952: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/graph.rs:
crates/net/src/ids.rs:
crates/net/src/packet.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
