/root/repo/target/debug/deps/flash_net-c054d7056cc5e948.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs Cargo.toml

/root/repo/target/debug/deps/libflash_net-c054d7056cc5e948.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs Cargo.toml

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/graph.rs:
crates/net/src/ids.rs:
crates/net/src/packet.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
