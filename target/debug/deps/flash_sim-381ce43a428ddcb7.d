/root/repo/target/debug/deps/flash_sim-381ce43a428ddcb7.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/flash_sim-381ce43a428ddcb7: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
