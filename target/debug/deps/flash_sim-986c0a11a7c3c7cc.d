/root/repo/target/debug/deps/flash_sim-986c0a11a7c3c7cc.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libflash_sim-986c0a11a7c3c7cc.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/debug/deps/libflash_sim-986c0a11a7c3c7cc.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
