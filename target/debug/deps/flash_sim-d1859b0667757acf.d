/root/repo/target/debug/deps/flash_sim-d1859b0667757acf.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libflash_sim-d1859b0667757acf.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
