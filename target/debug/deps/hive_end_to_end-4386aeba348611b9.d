/root/repo/target/debug/deps/hive_end_to_end-4386aeba348611b9.d: tests/hive_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libhive_end_to_end-4386aeba348611b9.rmeta: tests/hive_end_to_end.rs Cargo.toml

tests/hive_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
