/root/repo/target/debug/deps/hive_end_to_end-7613756be9f98f1e.d: tests/hive_end_to_end.rs

/root/repo/target/debug/deps/hive_end_to_end-7613756be9f98f1e: tests/hive_end_to_end.rs

tests/hive_end_to_end.rs:
