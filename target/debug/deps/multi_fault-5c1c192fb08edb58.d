/root/repo/target/debug/deps/multi_fault-5c1c192fb08edb58.d: tests/multi_fault.rs

/root/repo/target/debug/deps/multi_fault-5c1c192fb08edb58: tests/multi_fault.rs

tests/multi_fault.rs:
