/root/repo/target/debug/deps/multi_fault-623f466f0bb52a41.d: tests/multi_fault.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_fault-623f466f0bb52a41.rmeta: tests/multi_fault.rs Cargo.toml

tests/multi_fault.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
