/root/repo/target/debug/deps/properties-64050e9e72d80322.d: tests/properties.rs

/root/repo/target/debug/deps/properties-64050e9e72d80322: tests/properties.rs

tests/properties.rs:
