/root/repo/target/debug/deps/recovery-362c2ebfe00719d1.d: crates/core/tests/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-362c2ebfe00719d1.rmeta: crates/core/tests/recovery.rs Cargo.toml

crates/core/tests/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
