/root/repo/target/debug/deps/recovery-c6921f9ac0fa2506.d: crates/core/tests/recovery.rs

/root/repo/target/debug/deps/recovery-c6921f9ac0fa2506: crates/core/tests/recovery.rs

crates/core/tests/recovery.rs:
