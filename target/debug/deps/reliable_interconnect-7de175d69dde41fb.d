/root/repo/target/debug/deps/reliable_interconnect-7de175d69dde41fb.d: tests/reliable_interconnect.rs Cargo.toml

/root/repo/target/debug/deps/libreliable_interconnect-7de175d69dde41fb.rmeta: tests/reliable_interconnect.rs Cargo.toml

tests/reliable_interconnect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
