/root/repo/target/debug/deps/reliable_interconnect-85f1f0e9f8830b1c.d: tests/reliable_interconnect.rs

/root/repo/target/debug/deps/reliable_interconnect-85f1f0e9f8830b1c: tests/reliable_interconnect.rs

tests/reliable_interconnect.rs:
