/root/repo/target/debug/deps/speculation-b9e2ac2ade8b7a2f.d: tests/speculation.rs

/root/repo/target/debug/deps/speculation-b9e2ac2ade8b7a2f: tests/speculation.rs

tests/speculation.rs:
