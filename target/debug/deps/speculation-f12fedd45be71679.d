/root/repo/target/debug/deps/speculation-f12fedd45be71679.d: tests/speculation.rs Cargo.toml

/root/repo/target/debug/deps/libspeculation-f12fedd45be71679.rmeta: tests/speculation.rs Cargo.toml

tests/speculation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
