/root/repo/target/debug/deps/table_5_3_validation-7e13fafc8466242b.d: crates/bench/benches/table_5_3_validation.rs Cargo.toml

/root/repo/target/debug/deps/libtable_5_3_validation-7e13fafc8466242b.rmeta: crates/bench/benches/table_5_3_validation.rs Cargo.toml

crates/bench/benches/table_5_3_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
