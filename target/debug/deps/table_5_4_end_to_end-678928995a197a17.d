/root/repo/target/debug/deps/table_5_4_end_to_end-678928995a197a17.d: crates/bench/benches/table_5_4_end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libtable_5_4_end_to_end-678928995a197a17.rmeta: crates/bench/benches/table_5_4_end_to_end.rs Cargo.toml

crates/bench/benches/table_5_4_end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
