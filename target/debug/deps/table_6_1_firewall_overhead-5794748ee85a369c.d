/root/repo/target/debug/deps/table_6_1_firewall_overhead-5794748ee85a369c.d: crates/bench/benches/table_6_1_firewall_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libtable_6_1_firewall_overhead-5794748ee85a369c.rmeta: crates/bench/benches/table_6_1_firewall_overhead.rs Cargo.toml

crates/bench/benches/table_6_1_firewall_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
