/root/repo/target/debug/deps/upgrade_protocol-691692f85744e68e.d: tests/upgrade_protocol.rs

/root/repo/target/debug/deps/upgrade_protocol-691692f85744e68e: tests/upgrade_protocol.rs

tests/upgrade_protocol.rs:
