/root/repo/target/debug/deps/upgrade_protocol-96b34a7cc5beaf7c.d: tests/upgrade_protocol.rs Cargo.toml

/root/repo/target/debug/deps/libupgrade_protocol-96b34a7cc5beaf7c.rmeta: tests/upgrade_protocol.rs Cargo.toml

tests/upgrade_protocol.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
