/root/repo/target/debug/deps/validation_suite-466812be87bb10b4.d: tests/validation_suite.rs Cargo.toml

/root/repo/target/debug/deps/libvalidation_suite-466812be87bb10b4.rmeta: tests/validation_suite.rs Cargo.toml

tests/validation_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
