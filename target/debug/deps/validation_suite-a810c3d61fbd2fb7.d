/root/repo/target/debug/deps/validation_suite-a810c3d61fbd2fb7.d: tests/validation_suite.rs

/root/repo/target/debug/deps/validation_suite-a810c3d61fbd2fb7: tests/validation_suite.rs

tests/validation_suite.rs:
