/root/repo/target/debug/examples/campaign-769d16efa9176c1e.d: examples/campaign.rs Cargo.toml

/root/repo/target/debug/examples/libcampaign-769d16efa9176c1e.rmeta: examples/campaign.rs Cargo.toml

examples/campaign.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
