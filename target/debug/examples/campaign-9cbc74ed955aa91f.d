/root/repo/target/debug/examples/campaign-9cbc74ed955aa91f.d: examples/campaign.rs

/root/repo/target/debug/examples/campaign-9cbc74ed955aa91f: examples/campaign.rs

examples/campaign.rs:
