/root/repo/target/debug/examples/fault_sweep-166fdb51b1a613e6.d: examples/fault_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libfault_sweep-166fdb51b1a613e6.rmeta: examples/fault_sweep.rs Cargo.toml

examples/fault_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
