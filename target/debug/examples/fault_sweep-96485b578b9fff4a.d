/root/repo/target/debug/examples/fault_sweep-96485b578b9fff4a.d: examples/fault_sweep.rs

/root/repo/target/debug/examples/fault_sweep-96485b578b9fff4a: examples/fault_sweep.rs

examples/fault_sweep.rs:
