/root/repo/target/debug/examples/hive_check-03b6666735b8a4b2.d: crates/hive/examples/hive_check.rs Cargo.toml

/root/repo/target/debug/examples/libhive_check-03b6666735b8a4b2.rmeta: crates/hive/examples/hive_check.rs Cargo.toml

crates/hive/examples/hive_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
