/root/repo/target/debug/examples/hive_check-e48e066d47c4fd4b.d: crates/hive/examples/hive_check.rs

/root/repo/target/debug/examples/hive_check-e48e066d47c4fd4b: crates/hive/examples/hive_check.rs

crates/hive/examples/hive_check.rs:
