/root/repo/target/debug/examples/parallel_make-5f7bbb84a9966bb9.d: examples/parallel_make.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_make-5f7bbb84a9966bb9.rmeta: examples/parallel_make.rs Cargo.toml

examples/parallel_make.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
