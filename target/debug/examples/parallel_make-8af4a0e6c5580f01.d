/root/repo/target/debug/examples/parallel_make-8af4a0e6c5580f01.d: examples/parallel_make.rs

/root/repo/target/debug/examples/parallel_make-8af4a0e6c5580f01: examples/parallel_make.rs

examples/parallel_make.rs:
