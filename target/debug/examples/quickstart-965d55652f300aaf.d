/root/repo/target/debug/examples/quickstart-965d55652f300aaf.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-965d55652f300aaf: examples/quickstart.rs

examples/quickstart.rs:
