/root/repo/target/debug/examples/recovery_trace-04d8f016bbd9e2af.d: examples/recovery_trace.rs Cargo.toml

/root/repo/target/debug/examples/librecovery_trace-04d8f016bbd9e2af.rmeta: examples/recovery_trace.rs Cargo.toml

examples/recovery_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
