/root/repo/target/debug/examples/recovery_trace-a9011c98ec398f05.d: examples/recovery_trace.rs

/root/repo/target/debug/examples/recovery_trace-a9011c98ec398f05: examples/recovery_trace.rs

examples/recovery_trace.rs:
