/root/repo/target/debug/examples/scaling_check-e1ab244d30e86bdf.d: crates/core/examples/scaling_check.rs

/root/repo/target/debug/examples/scaling_check-e1ab244d30e86bdf: crates/core/examples/scaling_check.rs

crates/core/examples/scaling_check.rs:
