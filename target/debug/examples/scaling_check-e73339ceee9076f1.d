/root/repo/target/debug/examples/scaling_check-e73339ceee9076f1.d: crates/core/examples/scaling_check.rs Cargo.toml

/root/repo/target/debug/examples/libscaling_check-e73339ceee9076f1.rmeta: crates/core/examples/scaling_check.rs Cargo.toml

crates/core/examples/scaling_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
