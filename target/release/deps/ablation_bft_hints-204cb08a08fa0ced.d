/root/repo/target/release/deps/ablation_bft_hints-204cb08a08fa0ced.d: crates/bench/benches/ablation_bft_hints.rs

/root/repo/target/release/deps/ablation_bft_hints-204cb08a08fa0ced: crates/bench/benches/ablation_bft_hints.rs

crates/bench/benches/ablation_bft_hints.rs:
