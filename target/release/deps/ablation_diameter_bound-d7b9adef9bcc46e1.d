/root/repo/target/release/deps/ablation_diameter_bound-d7b9adef9bcc46e1.d: crates/bench/benches/ablation_diameter_bound.rs

/root/repo/target/release/deps/ablation_diameter_bound-d7b9adef9bcc46e1: crates/bench/benches/ablation_diameter_bound.rs

crates/bench/benches/ablation_diameter_bound.rs:
