/root/repo/target/release/deps/ablation_reliable_interconnect-80543448b922f445.d: crates/bench/benches/ablation_reliable_interconnect.rs

/root/repo/target/release/deps/ablation_reliable_interconnect-80543448b922f445: crates/bench/benches/ablation_reliable_interconnect.rs

crates/bench/benches/ablation_reliable_interconnect.rs:
