/root/repo/target/release/deps/ablation_speculative_ping-b4d5288f21e8a9fd.d: crates/bench/benches/ablation_speculative_ping.rs

/root/repo/target/release/deps/ablation_speculative_ping-b4d5288f21e8a9fd: crates/bench/benches/ablation_speculative_ping.rs

crates/bench/benches/ablation_speculative_ping.rs:
