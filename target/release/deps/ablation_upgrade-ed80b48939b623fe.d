/root/repo/target/release/deps/ablation_upgrade-ed80b48939b623fe.d: crates/bench/benches/ablation_upgrade.rs

/root/repo/target/release/deps/ablation_upgrade-ed80b48939b623fe: crates/bench/benches/ablation_upgrade.rs

crates/bench/benches/ablation_upgrade.rs:
