/root/repo/target/release/deps/campaign_sweep-e7a68cf2c61f7f6c.d: crates/bench/benches/campaign_sweep.rs

/root/repo/target/release/deps/campaign_sweep-e7a68cf2c61f7f6c: crates/bench/benches/campaign_sweep.rs

crates/bench/benches/campaign_sweep.rs:
