/root/repo/target/release/deps/criterion_sim_speed-d72182a3ac7278be.d: crates/bench/benches/criterion_sim_speed.rs

/root/repo/target/release/deps/criterion_sim_speed-d72182a3ac7278be: crates/bench/benches/criterion_sim_speed.rs

crates/bench/benches/criterion_sim_speed.rs:
