/root/repo/target/release/deps/fig_5_5_recovery_scaling-e322a3775c61e250.d: crates/bench/benches/fig_5_5_recovery_scaling.rs

/root/repo/target/release/deps/fig_5_5_recovery_scaling-e322a3775c61e250: crates/bench/benches/fig_5_5_recovery_scaling.rs

crates/bench/benches/fig_5_5_recovery_scaling.rs:
