/root/repo/target/release/deps/fig_5_6_p4_scaling-e88e94ca7b6f7b45.d: crates/bench/benches/fig_5_6_p4_scaling.rs

/root/repo/target/release/deps/fig_5_6_p4_scaling-e88e94ca7b6f7b45: crates/bench/benches/fig_5_6_p4_scaling.rs

crates/bench/benches/fig_5_6_p4_scaling.rs:
