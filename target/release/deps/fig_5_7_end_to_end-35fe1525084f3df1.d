/root/repo/target/release/deps/fig_5_7_end_to_end-35fe1525084f3df1.d: crates/bench/benches/fig_5_7_end_to_end.rs

/root/repo/target/release/deps/fig_5_7_end_to_end-35fe1525084f3df1: crates/bench/benches/fig_5_7_end_to_end.rs

crates/bench/benches/fig_5_7_end_to_end.rs:
