/root/repo/target/release/deps/flash-e198fa2423864481.d: src/lib.rs

/root/repo/target/release/deps/libflash-e198fa2423864481.rlib: src/lib.rs

/root/repo/target/release/deps/libflash-e198fa2423864481.rmeta: src/lib.rs

src/lib.rs:
