/root/repo/target/release/deps/flash_bench-27d0a546aaee2404.d: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/release/deps/libflash_bench-27d0a546aaee2404.rlib: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/release/deps/libflash_bench-27d0a546aaee2404.rmeta: crates/bench/src/lib.rs crates/bench/src/results.rs

crates/bench/src/lib.rs:
crates/bench/src/results.rs:
