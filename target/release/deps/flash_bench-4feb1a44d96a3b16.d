/root/repo/target/release/deps/flash_bench-4feb1a44d96a3b16.d: crates/bench/src/lib.rs crates/bench/src/results.rs

/root/repo/target/release/deps/flash_bench-4feb1a44d96a3b16: crates/bench/src/lib.rs crates/bench/src/results.rs

crates/bench/src/lib.rs:
crates/bench/src/results.rs:
