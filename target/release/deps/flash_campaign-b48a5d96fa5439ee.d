/root/repo/target/release/deps/flash_campaign-b48a5d96fa5439ee.d: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs

/root/repo/target/release/deps/libflash_campaign-b48a5d96fa5439ee.rlib: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs

/root/repo/target/release/deps/libflash_campaign-b48a5d96fa5439ee.rmeta: crates/campaign/src/lib.rs crates/campaign/src/invariants.rs crates/campaign/src/runner.rs crates/campaign/src/schedule.rs crates/campaign/src/triage.rs

crates/campaign/src/lib.rs:
crates/campaign/src/invariants.rs:
crates/campaign/src/runner.rs:
crates/campaign/src/schedule.rs:
crates/campaign/src/triage.rs:
