/root/repo/target/release/deps/flash_coherence-8c8a51c8070904e4.d: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs

/root/repo/target/release/deps/libflash_coherence-8c8a51c8070904e4.rlib: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs

/root/repo/target/release/deps/libflash_coherence-8c8a51c8070904e4.rmeta: crates/coherence/src/lib.rs crates/coherence/src/cache.rs crates/coherence/src/directory.rs crates/coherence/src/line.rs crates/coherence/src/msg.rs crates/coherence/src/nodeset.rs

crates/coherence/src/lib.rs:
crates/coherence/src/cache.rs:
crates/coherence/src/directory.rs:
crates/coherence/src/line.rs:
crates/coherence/src/msg.rs:
crates/coherence/src/nodeset.rs:
