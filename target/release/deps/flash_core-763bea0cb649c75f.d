/root/repo/target/release/deps/flash_core-763bea0cb649c75f.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs

/root/repo/target/release/deps/libflash_core-763bea0cb649c75f.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs

/root/repo/target/release/deps/libflash_core-763bea0cb649c75f.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/experiment.rs crates/core/src/ext.rs crates/core/src/msg.rs crates/core/src/view.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/experiment.rs:
crates/core/src/ext.rs:
crates/core/src/msg.rs:
crates/core/src/view.rs:
