/root/repo/target/release/deps/flash_hive-907436cf935c10a9.d: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs

/root/repo/target/release/deps/libflash_hive-907436cf935c10a9.rlib: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs

/root/repo/target/release/deps/libflash_hive-907436cf935c10a9.rmeta: crates/hive/src/lib.rs crates/hive/src/cells.rs crates/hive/src/experiment.rs crates/hive/src/os.rs crates/hive/src/task.rs

crates/hive/src/lib.rs:
crates/hive/src/cells.rs:
crates/hive/src/experiment.rs:
crates/hive/src/os.rs:
crates/hive/src/task.rs:
