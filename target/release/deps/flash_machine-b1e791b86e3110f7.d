/root/repo/target/release/deps/flash_machine-b1e791b86e3110f7.d: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs

/root/repo/target/release/deps/libflash_machine-b1e791b86e3110f7.rlib: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs

/root/repo/target/release/deps/libflash_machine-b1e791b86e3110f7.rmeta: crates/machine/src/lib.rs crates/machine/src/fault.rs crates/machine/src/machine.rs crates/machine/src/node.rs crates/machine/src/oracle.rs crates/machine/src/params.rs crates/machine/src/payload.rs crates/machine/src/workload.rs

crates/machine/src/lib.rs:
crates/machine/src/fault.rs:
crates/machine/src/machine.rs:
crates/machine/src/node.rs:
crates/machine/src/oracle.rs:
crates/machine/src/params.rs:
crates/machine/src/payload.rs:
crates/machine/src/workload.rs:
