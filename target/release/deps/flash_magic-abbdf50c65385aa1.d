/root/repo/target/release/deps/flash_magic-abbdf50c65385aa1.d: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs

/root/repo/target/release/deps/libflash_magic-abbdf50c65385aa1.rlib: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs

/root/repo/target/release/deps/libflash_magic-abbdf50c65385aa1.rmeta: crates/magic/src/lib.rs crates/magic/src/controller.rs crates/magic/src/features.rs crates/magic/src/uncached.rs

crates/magic/src/lib.rs:
crates/magic/src/controller.rs:
crates/magic/src/features.rs:
crates/magic/src/uncached.rs:
