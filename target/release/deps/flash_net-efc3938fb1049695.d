/root/repo/target/release/deps/flash_net-efc3938fb1049695.d: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libflash_net-efc3938fb1049695.rlib: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs

/root/repo/target/release/deps/libflash_net-efc3938fb1049695.rmeta: crates/net/src/lib.rs crates/net/src/fabric.rs crates/net/src/graph.rs crates/net/src/ids.rs crates/net/src/packet.rs crates/net/src/routing.rs crates/net/src/topology.rs

crates/net/src/lib.rs:
crates/net/src/fabric.rs:
crates/net/src/graph.rs:
crates/net/src/ids.rs:
crates/net/src/packet.rs:
crates/net/src/routing.rs:
crates/net/src/topology.rs:
