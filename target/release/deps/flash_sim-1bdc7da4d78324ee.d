/root/repo/target/release/deps/flash_sim-1bdc7da4d78324ee.d: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libflash_sim-1bdc7da4d78324ee.rlib: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

/root/repo/target/release/deps/libflash_sim-1bdc7da4d78324ee.rmeta: crates/sim/src/lib.rs crates/sim/src/engine.rs crates/sim/src/queue.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs crates/sim/src/trace.rs

crates/sim/src/lib.rs:
crates/sim/src/engine.rs:
crates/sim/src/queue.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
crates/sim/src/trace.rs:
