/root/repo/target/release/deps/table_5_3_validation-a568f11850274a2a.d: crates/bench/benches/table_5_3_validation.rs

/root/repo/target/release/deps/table_5_3_validation-a568f11850274a2a: crates/bench/benches/table_5_3_validation.rs

crates/bench/benches/table_5_3_validation.rs:
