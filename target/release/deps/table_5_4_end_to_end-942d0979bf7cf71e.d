/root/repo/target/release/deps/table_5_4_end_to_end-942d0979bf7cf71e.d: crates/bench/benches/table_5_4_end_to_end.rs

/root/repo/target/release/deps/table_5_4_end_to_end-942d0979bf7cf71e: crates/bench/benches/table_5_4_end_to_end.rs

crates/bench/benches/table_5_4_end_to_end.rs:
