/root/repo/target/release/deps/table_6_1_firewall_overhead-874b799133223789.d: crates/bench/benches/table_6_1_firewall_overhead.rs

/root/repo/target/release/deps/table_6_1_firewall_overhead-874b799133223789: crates/bench/benches/table_6_1_firewall_overhead.rs

crates/bench/benches/table_6_1_firewall_overhead.rs:
