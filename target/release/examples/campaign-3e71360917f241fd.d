/root/repo/target/release/examples/campaign-3e71360917f241fd.d: examples/campaign.rs

/root/repo/target/release/examples/campaign-3e71360917f241fd: examples/campaign.rs

examples/campaign.rs:
