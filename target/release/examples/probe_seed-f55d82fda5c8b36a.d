/root/repo/target/release/examples/probe_seed-f55d82fda5c8b36a.d: examples/probe_seed.rs

/root/repo/target/release/examples/probe_seed-f55d82fda5c8b36a: examples/probe_seed.rs

examples/probe_seed.rs:
