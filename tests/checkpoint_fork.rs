//! Fork-determinism and checkpoint-placement tests for the warm-state
//! checkpoint/fork engine (the machinery behind the paper-scale sweeps of
//! Tables 5.3 and 5.4).
//!
//! The correctness contract is trace-hash equivalence: a run forked from a
//! warm checkpoint must produce a [`flash::obs::Recorder::merged_hash`]
//! bit-identical to a from-scratch run with the same seeds. The hash covers
//! every recorded event in every trace domain in order, so any divergence
//! in timing, message order, RNG state or workload cursor shows up.

use flash::core::{
    finish_fault_experiment, finish_fault_experiment_sharded, prepare_fault_experiment,
    prepare_fault_experiment_sharded, random_fault, run_fault_experiment,
    run_fault_experiment_sharded, ExperimentConfig, FaultKind, RecoveryConfig,
};
use flash::hive::{finish_parallel_make, prepare_parallel_make, HiveConfig};
use flash::machine::MachineParams;
use flash::sim::DetRng;

fn quick_experiment(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(MachineParams::table_5_1(), seed);
    cfg.fill_ops = 400;
    cfg.total_ops = 1_000;
    cfg
}

/// For every fault type, a run forked from a warm checkpoint produces the
/// same trace hash, end time and validation outcome as a from-scratch run
/// with identical seeds (pinned: machine seed 11, fault seed derived per
/// kind).
#[test]
fn forked_run_matches_scratch_for_every_fault_type() {
    let cfg = quick_experiment(11);
    let ckpt = prepare_fault_experiment(&cfg).checkpoint();
    for (i, &kind) in FaultKind::ALL.iter().enumerate() {
        let draw = || {
            let mut rng = DetRng::new(0xF0 + i as u64);
            random_fault(kind, cfg.params.n_nodes, &mut rng)
        };
        let forked = finish_fault_experiment(ckpt.fork(), draw());
        let scratch = run_fault_experiment(&cfg, draw());
        assert!(forked.finished && scratch.finished, "{kind:?}");
        assert_eq!(
            forked.trace_hash, scratch.trace_hash,
            "{kind:?}: forked trace diverged from from-scratch"
        );
        assert_eq!(forked.end_time, scratch.end_time, "{kind:?}");
        assert_eq!(forked.bus_errors, scratch.bus_errors, "{kind:?}");
        assert_eq!(
            forked.validation.passed(),
            scratch.validation.passed(),
            "{kind:?}"
        );
        // Forks are independent: a second fork replays identically.
        let again = finish_fault_experiment(ckpt.fork(), draw());
        assert_eq!(again.trace_hash, forked.trace_hash, "{kind:?} refork");
    }
}

/// Gray faults (fail-slow, degraded memory, lossy link, pool failure)
/// preserve the same fork contract as the fail-stop kinds: a run forked
/// from a warm checkpoint hashes identically to a from-scratch run. The
/// lossy-link case exercises the seeded per-packet drop RNG across the
/// checkpoint boundary — the RNG state is part of the fabric snapshot.
#[test]
fn forked_run_matches_scratch_for_gray_fault_types() {
    use flash::machine::FaultSpec;
    use flash::net::{NodeId, RouterId};

    let cfg = quick_experiment(31);
    let ckpt = prepare_fault_experiment(&cfg).checkpoint();
    let grays = [
        FaultSpec::FailSlow(NodeId(2), 5),
        FaultSpec::DegradedMemory(NodeId(1), 30, 900),
        FaultSpec::LossyLink(RouterId(0), RouterId(1), 60_000),
        FaultSpec::PoolFailure {
            pool: vec![NodeId(1), NodeId(2)],
        },
    ];
    for fault in grays {
        let forked = finish_fault_experiment(ckpt.fork(), fault.clone());
        let scratch = run_fault_experiment(&cfg, fault.clone());
        assert!(forked.finished && scratch.finished, "{fault:?}");
        assert_eq!(
            forked.trace_hash, scratch.trace_hash,
            "{fault:?}: forked trace diverged from from-scratch"
        );
        assert_eq!(forked.end_time, scratch.end_time, "{fault:?}");
        assert_eq!(
            forked.validation.passed(),
            scratch.validation.passed(),
            "{fault:?}"
        );
        let again = finish_fault_experiment(ckpt.fork(), fault.clone());
        assert_eq!(again.trace_hash, forked.trace_hash, "{fault:?} refork");
    }
}

/// A checkpoint taken *while a lossy link is actively dropping packets*
/// (some drops already consumed from the loss RNG, more to come) forks into
/// a run bit-identical to the original continued past the same point.
#[test]
fn checkpoint_mid_lossy_drops_replays_identically() {
    use flash::machine::FaultSpec;
    use flash::net::{NodeId, RouterId};
    use flash::sim::SimDuration;

    let cfg = quick_experiment(37);
    let mut m = prepare_fault_experiment(&cfg);
    let fault = FaultSpec::Multi(vec![
        FaultSpec::LossyLink(RouterId(0), RouterId(1), 200_000),
        FaultSpec::FailSlow(NodeId(3), 4),
    ]);
    m.schedule_fault(m.now() + SimDuration::from_nanos(1), fault);

    // Run in fine slices until at least one packet has been dropped, so
    // the checkpoint lands with the loss RNG mid-stream.
    let mut guard = 0;
    loop {
        m.run_for(SimDuration::from_micros(5));
        if m.st().fabric.counters().get("drop_lossy_link") > 0 {
            break;
        }
        guard += 1;
        assert!(guard < 2_000_000, "lossy link never dropped a packet");
    }

    let ckpt = m.checkpoint();
    let mut fork = ckpt.fork();
    let budget = m.now() + SimDuration::from_secs(20);
    m.run_until(budget);
    fork.run_until(budget);

    assert_eq!(m.now(), fork.now());
    assert_eq!(
        m.st().fabric.counters().get("drop_lossy_link"),
        fork.st().fabric.counters().get("drop_lossy_link"),
        "fork must replay the same drop sequence"
    );
    assert_eq!(
        m.st().obs.merged_hash(),
        fork.st().obs.merged_hash(),
        "mid-drop fork diverged from the original"
    );
}

/// Sharded-executor fork contract: a checkpoint taken from a *sharded*
/// warm-up forks into runs that hash bit-identically whatever the worker
/// count — and match a sharded from-scratch run with the same plan. The
/// region count is part of the run identity (a different spatial
/// discretization is a different valid schedule), but the worker count
/// only multiplexes shards and must never show up in the trace.
#[test]
fn sharded_fork_is_worker_count_invariant_and_matches_scratch() {
    use flash::machine::ShardPlan;

    let cfg = quick_experiment(41);
    let regions = 4;
    let ckpt = prepare_fault_experiment_sharded(&cfg, ShardPlan::new(regions, 2)).checkpoint();
    let fault = || {
        let mut rng = DetRng::new(0xC4);
        random_fault(FaultKind::Node, cfg.params.n_nodes, &mut rng)
    };

    let runs: Vec<_> = [1usize, 2, 4, 8]
        .iter()
        .map(|&w| finish_fault_experiment_sharded(ckpt.fork(), fault(), ShardPlan::new(regions, w)))
        .collect();
    let scratch = run_fault_experiment_sharded(&cfg, fault(), ShardPlan::new(regions, 1));

    for (out, &w) in runs.iter().zip(&[1usize, 2, 4, 8]) {
        assert!(out.finished, "w={w}");
        assert_eq!(
            out.trace_hash, scratch.trace_hash,
            "w={w}: sharded fork diverged from sharded from-scratch"
        );
        assert_eq!(out.end_time, scratch.end_time, "w={w}");
        assert_eq!(out.bus_errors, scratch.bus_errors, "w={w}");
        assert_eq!(
            out.validation.passed(),
            scratch.validation.passed(),
            "w={w}"
        );
    }
}

/// A checkpoint taken mid-recovery *under the sharded executor* forks into
/// runs that finish bit-identically across worker counts. (Serial-engine
/// equality is deliberately *not* claimed: the sharded schedule is its own
/// valid discretization — see the deviations list in DESIGN.md.)
#[test]
fn sharded_mid_recovery_fork_is_worker_count_invariant() {
    use flash::machine::ShardPlan;
    use flash::sim::SimDuration;

    let cfg = quick_experiment(43);
    let plan = |w: usize| ShardPlan::new(4, w);
    let mut m = prepare_fault_experiment_sharded(&cfg, plan(2));
    let fault = {
        let mut rng = DetRng::new(0xC7);
        random_fault(FaultKind::Node, cfg.params.n_nodes, &mut rng)
    };
    m.schedule_fault(m.now() + SimDuration::from_nanos(1), fault);

    // Drive the machine into recovery with the sharded executor itself.
    let mut guard = 0;
    loop {
        let horizon = m.now() + SimDuration::from_micros(5);
        m.run_until_sharded(horizon, plan(2));
        let entries = m.ext().phase_entries();
        if m.ext().recovery_active() && entries.p2.is_some() && !m.ext().report.completed() {
            break;
        }
        guard += 1;
        assert!(guard < 2_000_000, "never reached mid-recovery state");
    }

    let ckpt = m.checkpoint();
    let budget = m.now() + SimDuration::from_secs(20);

    let mut reference = ckpt.fork();
    reference.run_until_sharded(budget, plan(1));
    let reference_hash = reference.st().obs.merged_hash();
    assert!(reference.ext().report.completed());
    assert!(reference.st().validate().passed());

    for w in [2usize, 4, 8] {
        let mut fork = ckpt.fork();
        fork.run_until_sharded(budget, plan(w));
        assert_eq!(fork.now(), reference.now(), "w={w}");
        assert_eq!(
            fork.st().obs.merged_hash(),
            reference_hash,
            "w={w}: sharded mid-recovery fork diverged"
        );
        assert!(fork.ext().report.completed(), "w={w}");
        assert!(fork.st().validate().passed(), "w={w}");
    }
}

/// End-to-end (Table 5.4 methodology): a parallel-make run forked from a
/// mid-make warm checkpoint hashes identically to a from-scratch run that
/// boots its own machine and warms to the same progress point.
#[test]
fn end_to_end_fork_matches_scratch_mid_make() {
    let mut params = MachineParams::table_5_1();
    params.n_nodes = 4;
    let hive = HiveConfig {
        n_cells: 4,
        files_per_task: 2,
        blocks_per_file: 8,
        out_blocks: 4,
        compute_ns: 10_000,
        ..HiveConfig::default()
    };
    let recovery = RecoveryConfig::default();
    let fault = || {
        let mut rng = DetRng::new(77);
        random_fault(FaultKind::Node, params.n_nodes, &mut rng)
    };

    let mut warm = prepare_parallel_make(params, &hive, recovery, 5);
    warm.warm_to_percent(50);
    let forked = finish_parallel_make(warm.fork(), Some(fault()));

    let mut scratch_prep = prepare_parallel_make(params, &hive, recovery, 5);
    scratch_prep.warm_to_percent(50);
    let scratch = finish_parallel_make(scratch_prep, Some(fault()));

    assert!(forked.finished && scratch.finished);
    assert_eq!(forked.trace_hash, scratch.trace_hash);
    assert_eq!(forked.lines_reinitialized, scratch.lines_reinitialized);
    assert_eq!(forked.compiles, scratch.compiles);
}

/// Service-workload fork contract (the `hive-kv` serving harness): a KV
/// run forked from a mid-traffic warm checkpoint hashes identically to a
/// from-scratch run warmed to the same progress point, for fail-stop and
/// all four gray fault classes striking mid-traffic. The hash covers the
/// request-lifecycle trace events and replication-repair events, so any
/// divergence in arrival schedules, retry backoff, or repair ordering
/// across the checkpoint boundary shows up.
#[test]
fn kv_serving_fork_matches_scratch_for_every_fault_class() {
    use flash::hivekv::{finish_kv_serving, prepare_kv_serving, KvConfig};
    use flash::machine::FaultSpec;
    use flash::net::{NodeId, RouterId};

    let mut params = MachineParams::table_5_1();
    params.n_nodes = 4;
    let kv = KvConfig {
        n_cells: 4,
        chunks: 8,
        requests_per_shard: 60,
        ..KvConfig::default()
    };
    let recovery = RecoveryConfig::default();
    let faults: [Option<FaultSpec>; 6] = [
        None,
        Some(FaultSpec::Node(NodeId(2))),
        Some(FaultSpec::FailSlow(NodeId(2), 5)),
        Some(FaultSpec::DegradedMemory(NodeId(1), 30, 900)),
        Some(FaultSpec::LossyLink(RouterId(0), RouterId(1), 60_000)),
        Some(FaultSpec::PoolFailure {
            pool: vec![NodeId(1), NodeId(2)],
        }),
    ];

    let mut warm = prepare_kv_serving(params, &kv, recovery, 9);
    warm.warm_to_percent(50);
    for fault in faults {
        let forked = finish_kv_serving(warm.fork(), fault.clone());

        let mut scratch_prep = prepare_kv_serving(params, &kv, recovery, 9);
        scratch_prep.warm_to_percent(50);
        let scratch = finish_kv_serving(scratch_prep, fault.clone());

        assert!(forked.finished && scratch.finished, "{fault:?}");
        assert_eq!(
            forked.trace_hash, scratch.trace_hash,
            "{fault:?}: forked KV trace diverged from from-scratch"
        );
        assert_eq!(forked.stats.ok, scratch.stats.ok, "{fault:?}");
        assert_eq!(forked.stats.errors, scratch.stats.errors, "{fault:?}");
        assert_eq!(forked.stats.unserved, scratch.stats.unserved, "{fault:?}");
        assert_eq!(forked.checks.len(), scratch.checks.len(), "{fault:?}");
        assert!(
            forked.checks.is_empty(),
            "{fault:?}: serving invariants violated: {:?}",
            forked.checks
        );

        // Forks are independent: a second fork replays identically.
        let again = finish_kv_serving(warm.fork(), fault.clone());
        assert_eq!(again.trace_hash, forked.trace_hash, "{fault:?} refork");
    }
}

/// Checkpoints may be taken mid-recovery — between the P1 and P4 phase
/// entries — and a fork taken there still replays bit-identically: the
/// in-flight recovery messages and timed extension events are part of the
/// snapshot. (This is the "supported" branch of the supported-or-cleanly-
/// rejected contract; nothing needs rejecting.)
#[test]
fn checkpoint_mid_recovery_replays_identically() {
    use flash::sim::SimDuration;

    let cfg = quick_experiment(23);
    let mut m = prepare_fault_experiment(&cfg);
    let fault = {
        let mut rng = DetRng::new(0xAB);
        random_fault(FaultKind::Node, cfg.params.n_nodes, &mut rng)
    };
    m.schedule_fault(m.now() + SimDuration::from_nanos(1), fault);

    // Run in fine slices until the machine is inside recovery, strictly
    // past the P1 entry and before completion.
    let mut guard = 0;
    loop {
        m.run_for(SimDuration::from_micros(5));
        let entries = m.ext().phase_entries();
        if m.ext().recovery_active() && entries.p2.is_some() && !m.ext().report.completed() {
            break;
        }
        guard += 1;
        assert!(guard < 2_000_000, "never reached mid-recovery state");
    }
    let entries = m.ext().phase_entries();
    assert!(entries.p1.is_some() && entries.p2.is_some());
    assert!(
        entries.p4.is_none() || !m.ext().report.completed(),
        "checkpoint must land before recovery completes"
    );

    let ckpt = m.checkpoint();
    let mut fork = ckpt.fork();

    // Drive the original and the fork through identical horizons.
    let budget = m.now() + SimDuration::from_secs(20);
    m.run_until(budget);
    fork.run_until(budget);

    assert_eq!(m.now(), fork.now());
    assert_eq!(
        m.st().obs.merged_hash(),
        fork.st().obs.merged_hash(),
        "mid-recovery fork diverged from the original"
    );
    assert!(m.ext().report.completed());
    assert!(fork.ext().report.completed());
    assert!(m.st().validate().passed());
    assert!(fork.st().validate().passed());
}
