//! End-to-end checks of the containment features' externally visible
//! behaviour: bus errors on incoherent lines and dead homes after recovery,
//! firewall denial of cross-cell writes, and exactly-once uncached I/O
//! across a recovery.

use flash::coherence::{DirState, LineAddr};
use flash::core::{build_machine, RecoveryConfig};
use flash::machine::{FaultSpec, MachineParams, OpResult, ProcOp, ProcState, Script, Workload};
use flash::magic::BusError;
use flash::net::NodeId;
use flash::sim::{SimDuration, SimTime};

const LPN: u64 = 8192; // lines per node in the tiny config

fn tiny() -> MachineParams {
    MachineParams::tiny()
}

fn script_results(m: &flash::core::FcMachine, node: NodeId) -> Vec<OpResult> {
    m.st().nodes[node.index()]
        .workload
        .as_any()
        .and_then(|a| a.downcast_ref::<Script>())
        .map(|s| s.results().to_vec())
        .unwrap_or_default()
}

#[test]
fn post_recovery_accesses_bus_error_correctly() {
    // Node 1 dirties line L (homed on node 0) and then dies: L becomes
    // incoherent. Node 3 then touches node 1's memory (detection +
    // DeadHome error) and L (Incoherent error).
    let line_l = LineAddr(100); // homed on node 0
    let dead_home_line = LineAddr(LPN + 50); // homed on node 1
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        match n.0 {
            1 => Box::new(Script::new([ProcOp::Write(line_l)])),
            3 => Box::new(Script::new([
                ProcOp::Compute(1_000_000),   // let the write land and the fault hit
                ProcOp::Read(dead_home_line), // times out -> triggers recovery
                ProcOp::Read(line_l),         // incoherent after recovery
                ProcOp::Read(LineAddr(200)),  // untouched line still works
            ])),
            _ => Box::new(Script::new([])),
        }
    };
    let mut m = build_machine(tiny(), RecoveryConfig::default(), mk, 11);
    m.start();
    m.schedule_fault(SimTime::from_nanos(500_000), FaultSpec::Node(NodeId(1)));
    m.run_until(SimTime::MAX);

    // L was dirty only on the dead node: marked incoherent at its home.
    assert_eq!(m.st().nodes[0].dir.state(line_l), DirState::Incoherent);

    let results = script_results(&m, NodeId(3));
    assert_eq!(results.len(), 4, "all four ops completed: {results:?}");
    assert!(matches!(results[0], OpResult::Ok(_)));
    assert_eq!(results[1], OpResult::BusError(BusError::DeadHome));
    assert_eq!(results[2], OpResult::BusError(BusError::Incoherent));
    assert!(matches!(results[3], OpResult::Ok(_)));
    assert!(matches!(m.st().proc_state(NodeId(3)), ProcState::Halted));
}

#[test]
fn firewall_blocks_cross_cell_write_after_hive_setup() {
    use flash::hive::CellLayout;

    let mut m = build_machine(
        tiny(),
        RecoveryConfig::default(),
        |n: NodeId| -> Box<dyn Workload> {
            if n == NodeId(2) {
                // Write into node 0's memory: firewall-restricted to cell 0.
                Box::new(Script::new([ProcOp::Write(LineAddr(300))]))
            } else {
                Box::new(Script::new([]))
            }
        },
        12,
    );
    let layout = CellLayout::contiguous(4, 4);
    flash::hive::os::configure(
        &mut m,
        &layout,
        &flash::hive::HiveConfig {
            n_cells: 4,
            ..Default::default()
        },
    );
    m.start();
    m.run_until(SimTime::MAX);
    let results = script_results(&m, NodeId(2));
    assert_eq!(results, vec![OpResult::BusError(BusError::FirewallDenied)]);
    // The line was never granted exclusive.
    assert_eq!(m.st().nodes[0].dir.state(LineAddr(300)), DirState::Uncached);
}

#[test]
fn uncached_io_is_exactly_once_across_recovery() {
    // Node 2 performs uncached reads against node 0's device while node 3
    // dies mid-run. The device register counts every read: no read may be
    // duplicated by the recovery machinery.
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        match n.0 {
            2 => {
                let mut ops = vec![ProcOp::Compute(100_000)];
                for _ in 0..20 {
                    ops.push(ProcOp::UncachedRead { dev: NodeId(0) });
                    ops.push(ProcOp::Compute(200_000));
                }
                Box::new(Script::new(ops))
            }
            1 => Box::new(Script::new(
                // Provides detection traffic toward node 3.
                (0..50).map(|i| {
                    if i % 2 == 0 {
                        ProcOp::Read(LineAddr(3 * LPN + 40 + i))
                    } else {
                        ProcOp::Compute(100_000)
                    }
                }),
            )),
            _ => Box::new(Script::new([])),
        }
    };
    let mut m = build_machine(tiny(), RecoveryConfig::default(), mk, 13);
    m.start();
    m.schedule_fault(SimTime::from_nanos(700_000), FaultSpec::Node(NodeId(3)));
    m.run_until(SimTime::MAX);

    let results = script_results(&m, NodeId(2));
    let values: Vec<u64> = results
        .iter()
        .filter_map(|r| match r {
            OpResult::Ok(Some(v)) => Some(*v),
            _ => None,
        })
        .collect();
    // Every successful read returned a distinct, strictly increasing value:
    // nothing was serviced twice.
    for w in values.windows(2) {
        assert!(w[1] > w[0], "duplicated device read: {values:?}");
    }
    assert_eq!(
        m.st().nodes[0].io_dev.reads,
        values.len() as u64,
        "device serviced exactly the successful reads"
    );
}

#[test]
fn speculative_wild_write_is_contained_by_firewall() {
    use flash::hive::CellLayout;

    // Model an incorrectly speculated write from node 3 into node 0's
    // kernel page: with Hive's firewall ACLs it must be refused, so node
    // 3's failure cannot take node 0's data with it (Section 3.3).
    let kernel_line = LineAddr(600);
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        if n == NodeId(3) {
            Box::new(Script::new([ProcOp::Write(kernel_line)]))
        } else {
            Box::new(Script::new([]))
        }
    };
    let mut m = build_machine(tiny(), RecoveryConfig::default(), mk, 14);
    let layout = CellLayout::contiguous(4, 4);
    flash::hive::os::configure(
        &mut m,
        &layout,
        &flash::hive::HiveConfig {
            n_cells: 4,
            ..Default::default()
        },
    );
    m.start();
    m.run_for(SimDuration::from_millis(1));
    // The write was denied; node 0's memory version is untouched.
    assert_eq!(m.st().counters.get("firewall_denials"), 1);
    assert_eq!(
        m.st().nodes[0].dir.mem_version(kernel_line),
        flash::coherence::Version(0)
    );
}

#[test]
fn nak_overflow_detects_coherence_deadlock() {
    // Node 1 dirties a line homed on node 0, then dies. Node 2's write to
    // the same line locks the home in PendingRecall (the recall to the dead
    // owner is never answered), so node 2 spins on NAKs until the hardware
    // counter overflows and triggers recovery — the second detection
    // mechanism of Table 4.1, faster than the memory-op timeout here.
    // Node 2's request locks the home (PendingRecall toward the dead
    // owner) and waits for data; node 3's subsequent request to the same
    // line is the one that spins on NAKs.
    let line = LineAddr(150); // homed on node 0
    let mut params = tiny();
    params.magic.nak_threshold = 32; // overflow well before the timeout
    params.magic.mem_op_timeout_ns = 10_000_000; // timeout effectively off
    params.magic.heartbeat_timeout_ns = 10_000_000; // heartbeat audit too
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        match n.0 {
            1 => Box::new(Script::new([ProcOp::Write(line)])),
            2 => Box::new(Script::new([
                ProcOp::Compute(600_000), // after node 1 dies
                ProcOp::Write(line),      // locks the home forever
            ])),
            3 => Box::new(Script::new([
                ProcOp::Compute(650_000),
                ProcOp::Write(line), // NAK spin -> counter overflow
            ])),
            _ => Box::new(Script::new([])),
        }
    };
    let mut m = build_machine(params, RecoveryConfig::default(), mk, 15);
    m.start();
    m.schedule_fault(SimTime::from_nanos(500_000), FaultSpec::Node(NodeId(1)));
    m.run_until(SimTime::MAX);
    assert!(
        m.st().counters.get("nak_overflows") >= 1,
        "{}",
        m.st().counters
    );
    assert!(m.ext().report.completed(), "recovery ran");
    assert!(m.st().validate().passed(), "{}", m.st().validate());
    // The line was dirty only on the dead node: marked incoherent, and the
    // retried writes finally bus-error.
    assert_eq!(m.st().nodes[0].dir.state(line), DirState::Incoherent);
    for node in [NodeId(2), NodeId(3)] {
        let r = script_results(&m, node);
        assert_eq!(
            r.last(),
            Some(&OpResult::BusError(BusError::Incoherent)),
            "{node}"
        );
    }
}

#[test]
fn truncated_packet_triggers_recovery() {
    // Heavy line-sized traffic across a link that fails mid-run: some
    // packet is severed in flight and delivered truncated, dispatching the
    // error handler (Table 4.1's fourth trigger).
    // Whether a packet is mid-flight at the instant the link dies depends
    // on sub-microsecond phase; sweep injection times until one run severs
    // a packet. Every attempt must still validate.
    let mut truncated_seen = false;
    for attempt in 0..24u64 {
        let mut params = tiny();
        // Keep the timeout long so truncation is the fast trigger when it
        // fires at all.
        params.magic.mem_op_timeout_ns = 2_000_000;
        let mk = move |n: NodeId| -> Box<dyn Workload> {
            match n.0 {
                // Node 1 streams writes to lines homed on node 3: route
                // 1->3 crosses the 1-3 link of the 2x2 mesh.
                1 => Box::new(Script::new(
                    (0..2_000u64).map(|i| ProcOp::Write(LineAddr(3 * LPN + 40 + (i % 512)))),
                )),
                _ => Box::new(Script::new([])),
            }
        };
        let mut m = build_machine(params, RecoveryConfig::default(), mk, 16);
        m.start();
        m.schedule_fault(
            SimTime::from_nanos(200_000 + attempt * 73),
            FaultSpec::Link(flash::net::RouterId(1), flash::net::RouterId(3)),
        );
        m.run_until(SimTime::MAX);
        assert!(
            m.ext().report.completed(),
            "attempt {attempt}: recovery ran"
        );
        assert!(
            m.st().validate().passed(),
            "attempt {attempt}: {}",
            m.st().validate()
        );
        if m.st().counters.get("truncated_dispatches") >= 1 {
            truncated_seen = true;
            break;
        }
    }
    assert!(
        truncated_seen,
        "no injection time severed a packet mid-flight"
    );
}

#[test]
fn trace_records_the_failure_story() {
    use flash::obs::TraceEvent;
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        if n == NodeId(2) {
            Box::new(Script::new([
                ProcOp::Compute(600_000),
                ProcOp::Read(LineAddr(LPN + 10)), // homed on dead node 1
            ]))
        } else {
            Box::new(Script::new([]))
        }
    };
    let mut m = build_machine(tiny(), RecoveryConfig::default(), mk, 17);
    m.start();
    m.schedule_fault(SimTime::from_nanos(500_000), FaultSpec::Node(NodeId(1)));
    m.run_until(SimTime::MAX);
    let obs = &m.st().obs;
    assert!(!obs.is_empty());
    let mut saw_fault = false;
    let mut saw_trigger = false;
    let mut saw_complete = false;
    let mut last_seq = 0;
    for ev in obs.merged() {
        assert!(ev.seq >= last_seq, "merged trace is seq-ordered");
        last_seq = ev.seq;
        match ev.event {
            TraceEvent::FaultInjected { kind: "node", node } => {
                assert_eq!(node, 1);
                saw_fault = true;
            }
            TraceEvent::TriggerFired { .. } => saw_trigger = true,
            TraceEvent::PhaseExit { phase: 4, .. } => saw_complete = true,
            _ => {}
        }
    }
    assert!(saw_fault && saw_trigger && saw_complete, "{}", obs.render());
    // The merged trace's per-node recovery timeline is derivable.
    let rows = flash::obs::phase_rows(obs);
    assert!(
        rows.iter()
            .any(|(_, row)| row.enter_ns[0].is_some() && row.exit_ns[3].is_some()),
        "at least one node shows a full P1..P4 timeline:\n{}",
        flash::obs::phase_timeline(obs)
    );
}
