//! End-to-end Hive experiments across crates: the Table 5.4 scenario with
//! every fault type, multi-node cells, and the single-system-image
//! accounting after cell shutdown.

use flash::core::RecoveryConfig;
use flash::hive::{run_parallel_make, CellLayout, HiveConfig, TaskState};
use flash::machine::{FaultSpec, MachineParams};
use flash::net::{NodeId, RouterId};

fn hive_8() -> (MachineParams, HiveConfig) {
    (
        MachineParams::table_5_1(),
        HiveConfig {
            files_per_task: 2,
            blocks_per_file: 24,
            out_blocks: 12,
            compute_ns: 20_000,
            ..HiveConfig::default()
        },
    )
}

#[test]
fn every_fault_type_spares_unaffected_compiles() {
    let (params, hive) = hive_8();
    let faults = [
        FaultSpec::Node(NodeId(4)),
        FaultSpec::Router(RouterId(6)),
        FaultSpec::Link(RouterId(2), RouterId(3)),
        FaultSpec::InfiniteLoop(NodeId(7)),
        FaultSpec::FalseAlarm(NodeId(1)),
    ];
    for (i, fault) in faults.into_iter().enumerate() {
        let out = run_parallel_make(
            params,
            &hive,
            RecoveryConfig::default(),
            Some(fault.clone()),
            50 + i as u64,
        );
        assert!(out.finished, "{fault:?}");
        assert!(
            out.unaffected_all_completed(),
            "{fault:?}: {:?}",
            out.compiles
        );
    }
}

#[test]
fn false_alarm_interrupts_but_completes_everything() {
    let (params, hive) = hive_8();
    let out = run_parallel_make(
        params,
        &hive,
        RecoveryConfig::default(),
        Some(FaultSpec::FalseAlarm(NodeId(3))),
        60,
    );
    assert!(out.finished);
    for c in &out.compiles {
        assert_eq!(c.state, TaskState::Completed, "{c:?}");
        assert!(!c.affected);
    }
    assert_eq!(out.recovery.lines_marked_incoherent, 0);
    assert_eq!(out.lines_reinitialized, 0);
}

#[test]
fn multi_node_cells_shut_down_as_a_unit() {
    // 4 cells of 2 nodes each; node 3 (cell 1's second node) dies. The
    // whole of cell 1 must shut down cleanly even though node 2 itself is
    // healthy (failure-unit semantics, Section 3.3).
    let params = MachineParams::table_5_1();
    let hive = HiveConfig {
        n_cells: 4,
        files_per_task: 2,
        blocks_per_file: 16,
        out_blocks: 8,
        compute_ns: 20_000,
        ..HiveConfig::default()
    };
    let out = run_parallel_make(
        params,
        &hive,
        RecoveryConfig::default(),
        Some(FaultSpec::Node(NodeId(3))),
        61,
    );
    assert!(out.finished);
    // Node 2 was shut down by the recovery algorithm as part of the unit.
    assert!(out.recovery.nodes_shut_down >= 1, "{:?}", out.recovery);
    let affected: Vec<usize> = out
        .compiles
        .iter()
        .filter(|c| c.affected)
        .map(|c| c.cell)
        .collect();
    assert_eq!(affected, vec![1]);
    assert!(out.unaffected_all_completed(), "{:?}", out.compiles);
}

#[test]
fn cell_layout_matches_experiment_accounting() {
    let layout = CellLayout::contiguous(8, 4);
    // Killing node 5 dooms cell 2 (nodes 4-5).
    let failed = flash::coherence::NodeSet::singleton(NodeId(5));
    assert_eq!(layout.failed_cells(&failed), vec![2]);
}

#[test]
fn fault_free_baseline_is_clean() {
    let (params, hive) = hive_8();
    let out = run_parallel_make(params, &hive, RecoveryConfig::default(), None, 62);
    assert!(out.finished);
    assert!(out.compiles.iter().all(|c| c.state == TaskState::Completed));
    assert!(
        out.recovery.phases.triggered_at.is_none(),
        "no spurious recovery"
    );
}
