//! Compound faults and faults during recovery: the algorithm restarts under
//! a higher incarnation and still validates (paper, Section 4.1: "The
//! algorithm is able to cope with additional hardware failures that occur
//! during its execution by restarting whenever a new fault is detected").

use flash::core::{run_fault_experiment, ExperimentConfig};
use flash::machine::{FaultSpec, MachineParams};
use flash::net::{NodeId, RouterId};
use flash::sim::SimDuration;

fn cfg_8(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(MachineParams::table_5_1(), seed);
    cfg.fill_ops = 400;
    cfg.total_ops = 1_200;
    cfg
}

#[test]
fn simultaneous_double_node_failure() {
    let fault = FaultSpec::Multi(vec![FaultSpec::Node(NodeId(2)), FaultSpec::Node(NodeId(5))]);
    let out = run_fault_experiment(&cfg_8(21), fault);
    assert!(out.passed(), "{:?} / {}", out.recovery, out.validation);
    assert_eq!(out.recovery.nodes_resumed, 6);
}

#[test]
fn cabinet_power_loss() {
    // Two adjacent nodes lose controllers AND routers (the survivors stay
    // connected: the paper's recovery algorithm assumes no partition).
    let fault = FaultSpec::Multi(vec![
        FaultSpec::Node(NodeId(5)),
        FaultSpec::Router(RouterId(5)),
        FaultSpec::Node(NodeId(6)),
        FaultSpec::Router(RouterId(6)),
    ]);
    let out = run_fault_experiment(&cfg_8(22), fault);
    assert!(out.passed(), "{:?} / {}", out.recovery, out.validation);
    assert_eq!(out.recovery.nodes_resumed, 6);
}

#[test]
fn partitioning_fault_halts_minority_side() {
    // Routers 5 and 6 die AND the 0-1 link is cut: nodes {0, 4} are
    // partitioned from {1, 2, 3, 7}. The paper assumes partitions do not
    // occur but suggests a shutdown heuristic; our quorum rule halts the
    // minority side while the majority recovers and continues. Data shared
    // across the partition is conservatively marked incoherent, so no
    // silent corruption is possible.
    let fault = FaultSpec::Multi(vec![
        FaultSpec::Node(NodeId(5)),
        FaultSpec::Router(RouterId(5)),
        FaultSpec::Node(NodeId(6)),
        FaultSpec::Router(RouterId(6)),
        FaultSpec::Link(RouterId(0), RouterId(1)),
    ]);
    let out = run_fault_experiment(&cfg_8(26), fault);
    assert!(
        out.recovery.machine_halted,
        "minority side halted: {:?}",
        out.recovery
    );
    assert!(
        out.recovery.completed(),
        "majority side recovered: {:?}",
        out.recovery
    );
    assert!(
        out.validation.corrupted.is_empty(),
        "never silent corruption"
    );
}

#[test]
fn node_and_link_combination() {
    let fault = FaultSpec::Multi(vec![
        FaultSpec::InfiniteLoop(NodeId(3)),
        FaultSpec::Link(RouterId(6), RouterId(7)),
    ]);
    let out = run_fault_experiment(&cfg_8(23), fault);
    assert!(out.passed(), "{:?} / {}", out.recovery, out.validation);
}

#[test]
fn second_fault_during_recovery_restarts() {
    use flash::core::{build_machine, RecoveryConfig};
    use flash::machine::RandomFill;

    let params = MachineParams::table_5_1();
    let layout = params.layout();
    let prot = params.protected_lines;
    let mut m = build_machine(
        params,
        RecoveryConfig::default(),
        move |_| Box::new(RandomFill::valid_system_range(3_000, 0.5, layout, prot)),
        24,
    );
    m.start();
    m.run_for(SimDuration::from_micros(300));
    // First fault.
    m.schedule_fault(
        m.now() + SimDuration::from_nanos(1),
        FaultSpec::Node(NodeId(2)),
    );
    // Second fault lands in the middle of the first recovery (detection at
    // ~100us + recovery taking several ms).
    m.schedule_fault(
        m.now() + SimDuration::from_millis(2),
        FaultSpec::Node(NodeId(6)),
    );
    m.run_until(flash::sim::SimTime::MAX);
    let report = &m.ext().report;
    assert!(report.completed(), "{report:?}");
    assert_eq!(report.nodes_resumed, 6, "{report:?}");
    let validation = m.st().validate();
    assert!(validation.passed(), "{validation}");
    // Both dead nodes are gone from every survivor's node map.
    for n in m.st().nodes.iter().filter(|n| n.is_alive()) {
        assert!(!n.node_map.is_available(NodeId(2)));
        assert!(!n.node_map.is_available(NodeId(6)));
    }
}

#[test]
fn majority_failure_halts_machine() {
    // Killing more than half the nodes trips the split-brain heuristic.
    let fault = FaultSpec::Multi((1..=5).map(|i| FaultSpec::Node(NodeId(i))).collect());
    let out = run_fault_experiment(&cfg_8(25), fault);
    assert!(out.recovery.machine_halted, "{:?}", out.recovery);
}

#[test]
fn firmware_assertion_fails_fast_and_recovers() {
    // The assertion trigger spreads the wave from the dying controller
    // itself — detection is near-instant instead of timeout-bound.
    let out = run_fault_experiment(&cfg_8(27), FaultSpec::FirmwareAssertion(NodeId(4)));
    assert!(out.passed(), "{:?} / {}", out.recovery, out.validation);
    assert_eq!(out.recovery.nodes_resumed, 7);
    // The dying gasp makes the wave complete far faster than the 100us
    // memory-op timeout that drives detection of silent node deaths.
    let wave = out.recovery.trigger_wave_time().unwrap();
    assert!(
        wave < flash::sim::SimDuration::from_micros(50),
        "assertion-driven wave should beat timeout detection: {wave}"
    );
}
