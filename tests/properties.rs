//! Property-based tests of the recovery algorithm's building blocks and of
//! full fault-injection runs on randomized configurations.

use flash::coherence::{L2Cache, LineAddr, NodeSet, Version};
use flash::core::View;
use flash::net::{
    channel_dependencies_acyclic, up_down_tables, Mesh2D, NodeId, RouterId, Topology, UGraph,
};
use proptest::prelude::*;

fn mesh_graph(w: usize, h: usize) -> UGraph {
    let m = Mesh2D::new(w, h);
    UGraph::from_edges(m.num_routers(), m.links().iter().map(|l| (l.a.0, l.b.0)))
}

fn arb_view(w: usize, h: usize) -> impl Strategy<Value = View> {
    let n = w * h;
    (
        proptest::collection::vec(any::<bool>(), n),
        proptest::collection::vec(any::<bool>(), Mesh2D::new(w, h).links().len()),
    )
        .prop_map(move |(nodes_up, links_up)| {
            let m = Mesh2D::new(w, h);
            let mut v = View::new();
            for (i, up) in nodes_up.iter().enumerate() {
                if *up {
                    v.set_node_up(NodeId(i as u16));
                } else {
                    v.set_node_down(NodeId(i as u16));
                }
            }
            for (l, up) in m.links().iter().zip(links_up.iter()) {
                if *up {
                    v.set_link_up(l.a, l.b);
                } else {
                    v.set_link_down(l.a, l.b);
                }
            }
            v
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dissemination merge is commutative and idempotent — the lattice
    /// property the round exchange relies on.
    #[test]
    fn view_merge_is_a_join(a in arb_view(4, 3), b in arb_view(4, 3), c in arb_view(4, 3)) {
        // Commutativity.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // Idempotence.
        let mut aa = a.clone();
        prop_assert!(!aa.merge(&a.clone()));
        prop_assert_eq!(&aa, &a);
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
    }

    /// up*/down* rerouting is deadlock-free and connects every pair of
    /// routers that remains connected, for arbitrary failed link/router
    /// sets on a mesh.
    #[test]
    fn up_down_is_safe_on_random_failures(
        dead_routers in proptest::collection::vec(0u16..12, 0..4),
        dead_links in proptest::collection::vec(0usize..17, 0..5),
    ) {
        let m = Mesh2D::new(4, 3);
        let links = m.links();
        let mut alive = vec![true; 12];
        for r in &dead_routers {
            alive[*r as usize] = false;
        }
        let mut g = UGraph::new(12);
        for (i, l) in links.iter().enumerate() {
            if !dead_links.contains(&i) && alive[l.a.index()] && alive[l.b.index()] {
                g.add_edge(l.a.0, l.b.0);
            }
        }
        let Some(root) = (0..12u16).find(|&r| alive[r as usize]) else {
            return Ok(());
        };
        let tables = up_down_tables(&g, &alive, RouterId(root));
        prop_assert!(channel_dependencies_acyclic(&tables, &g, &alive));
        // Connectivity: every pair in the root's component is routable.
        let dist = g.bfs_distances(root, &alive);
        for s in 0..12u16 {
            for d in 0..12u16 {
                if dist[s as usize] != u32::MAX && dist[d as usize] != u32::MAX {
                    prop_assert!(
                        tables.route_length(RouterId(s), RouterId(d)).is_some(),
                        "no route {}->{}", s, d
                    );
                }
            }
        }
    }

    /// The dissemination round bounds — the paper's `2h` and the tighter
    /// center-based estimate — always cover the exact diameter of the live
    /// cwn graph, and the center bound never exceeds `2h`.
    #[test]
    fn round_bound_covers_diameter(view in arb_view(4, 4)) {
        let design = mesh_graph(4, 4);
        let g = view.cwn_graph(&design);
        let alive: Vec<bool> = (0..16u16)
            .map(|i| view.live_nodes().contains(NodeId(i)))
            .collect();
        // Only meaningful when the live nodes are connected (the recovery
        // algorithm's operating assumption).
        prop_assume!(g.live_connected(&alive));
        let diam = g.exact_diameter(&alive);
        let bound = view.round_bound(&design);
        prop_assert!(bound >= diam);
        let center = view.round_bound_center(&design);
        prop_assert!(center >= diam, "center bound sound: {} >= {}", center, diam);
        prop_assert!(center <= bound, "center bound no worse than 2h");
    }

    /// Cache model invariants under random operation sequences: occupancy
    /// never exceeds capacity, lookups agree with a reference map, and
    /// flush returns exactly the dirty lines.
    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..200)) {
        let mut cache = L2Cache::new(16);
        let mut reference: std::collections::HashMap<u64, (bool, Version)> =
            std::collections::HashMap::new();
        for (addr, write) in ops {
            let line = LineAddr(addr);
            match (cache.lookup(line).copied(), write) {
                (Some(l), true) if l.exclusive => {
                    let v = cache.store(line).unwrap();
                    reference.insert(addr, (true, v));
                }
                (Some(_), true) => {
                    cache.invalidate(line);
                    reference.remove(&addr);
                    let out = cache.insert(line, true, Version(addr));
                    track_eviction(&mut reference, out);
                    let v = cache.store(line).unwrap();
                    reference.insert(addr, (true, v));
                }
                (Some(_), false) => {
                    cache.touch(line);
                }
                (None, write) => {
                    let out = cache.insert(line, write, Version(addr));
                    track_eviction(&mut reference, out);
                    if write {
                        let v = cache.store(line).unwrap();
                        reference.insert(addr, (true, v));
                    } else {
                        reference.insert(addr, (false, Version(addr)));
                    }
                }
            }
            prop_assert!(cache.len() <= cache.capacity());
            prop_assert_eq!(cache.len(), reference.len());
        }
        // Flush returns exactly the dirty set.
        let mut dirty_expected: Vec<u64> = reference
            .iter()
            .filter(|(_, (d, _))| *d)
            .map(|(a, _)| *a)
            .collect();
        dirty_expected.sort_unstable();
        let flushed: Vec<u64> = cache.flush_all().iter().map(|l| l.addr.0).collect();
        prop_assert_eq!(flushed, dirty_expected);
        prop_assert!(cache.is_empty());
    }

    /// NodeSet behaves like a reference set.
    #[test]
    fn nodeset_matches_reference(ops in proptest::collection::vec((0u16..256, any::<bool>()), 0..200)) {
        let mut set = NodeSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for (id, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(NodeId(id)), reference.insert(id));
            } else {
                prop_assert_eq!(set.remove(NodeId(id)), reference.remove(&id));
            }
            prop_assert_eq!(set.len(), reference.len());
        }
        let members: Vec<u16> = set.iter().map(|n| n.0).collect();
        let expected: Vec<u16> = reference.into_iter().collect();
        prop_assert_eq!(members, expected);
    }
}

fn track_eviction(
    reference: &mut std::collections::HashMap<u64, (bool, Version)>,
    out: flash::coherence::InsertOutcome,
) {
    match out {
        flash::coherence::InsertOutcome::Installed => {}
        flash::coherence::InsertOutcome::EvictedClean(a) => {
            reference.remove(&a.0);
        }
        flash::coherence::InsertOutcome::EvictedDirty(l) => {
            reference.remove(&l.addr.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full randomized fault-injection runs validate cleanly (a randomized
    /// micro Table 5.3 over machine shape, seed and fault type).
    #[test]
    fn randomized_experiments_validate(
        seed in 0u64..1_000,
        kind_idx in 0usize..5,
        n_nodes in prop::sample::select(vec![4usize, 6, 8]),
    ) {
        use flash::core::{random_fault, run_fault_experiment, ExperimentConfig, FaultKind};
        use flash::machine::MachineParams;
        use flash::sim::DetRng;

        let mut params = MachineParams::tiny();
        params.n_nodes = n_nodes;
        let mut rng = DetRng::new(seed);
        let fault = random_fault(FaultKind::ALL[kind_idx], n_nodes, &mut rng);
        let mut cfg = ExperimentConfig::new(params, seed);
        cfg.fill_ops = 120;
        cfg.total_ops = 350;
        let out = run_fault_experiment(&cfg, fault.clone());
        prop_assert!(
            out.passed(),
            "fault {:?} on {} nodes seed {}: {} / recovery completed: {}",
            fault, n_nodes, seed, out.validation, out.recovery.completed()
        );
    }
}
