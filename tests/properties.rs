//! Property-style tests of the recovery algorithm's building blocks and of
//! full fault-injection runs on randomized configurations.
//!
//! The workspace carries no external property-testing dependency, so each
//! property runs as a loop over seeded [`DetRng`] cases with the same input
//! shapes and case counts the original formulation used; the seed is part
//! of every assertion message so a failure is replayable.

use flash::coherence::{L2Cache, LineAddr, NodeSet, Version};
use flash::core::View;
use flash::net::{
    channel_dependencies_acyclic, up_down_tables, Mesh2D, NodeId, RouterId, Topology, UGraph,
};
use flash::sim::DetRng;

fn mesh_graph(w: usize, h: usize) -> UGraph {
    let m = Mesh2D::new(w, h);
    UGraph::from_edges(m.num_routers(), m.links().iter().map(|l| (l.a.0, l.b.0)))
}

fn random_view(w: usize, h: usize, rng: &mut DetRng) -> View {
    let m = Mesh2D::new(w, h);
    let mut v = View::new();
    for i in 0..w * h {
        if rng.chance(0.5) {
            v.set_node_up(NodeId(i as u16));
        } else {
            v.set_node_down(NodeId(i as u16));
        }
    }
    for l in m.links() {
        if rng.chance(0.5) {
            v.set_link_up(l.a, l.b);
        } else {
            v.set_link_down(l.a, l.b);
        }
    }
    v
}

/// The dissemination merge is commutative and idempotent — the lattice
/// property the round exchange relies on.
#[test]
fn view_merge_is_a_join() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x11EE ^ case);
        let a = random_view(4, 3, &mut rng);
        let b = random_view(4, 3, &mut rng);
        let c = random_view(4, 3, &mut rng);
        // Commutativity.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(&ab, &ba, "case {case}");
        // Idempotence.
        let mut aa = a.clone();
        assert!(!aa.merge(&a.clone()), "case {case}");
        assert_eq!(&aa, &a, "case {case}");
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(&ab_c, &a_bc, "case {case}");
    }
}

/// up*/down* rerouting is deadlock-free and connects every pair of
/// routers that remains connected, for arbitrary failed link/router
/// sets on a mesh.
#[test]
fn up_down_is_safe_on_random_failures() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x0DD0 ^ case);
        let dead_routers: Vec<u16> = (0..rng.index(4)).map(|_| rng.below(12) as u16).collect();
        let dead_links: Vec<usize> = (0..rng.index(5)).map(|_| rng.index(17)).collect();
        let m = Mesh2D::new(4, 3);
        let links = m.links();
        let mut alive = vec![true; 12];
        for r in &dead_routers {
            alive[*r as usize] = false;
        }
        let mut g = UGraph::new(12);
        for (i, l) in links.iter().enumerate() {
            if !dead_links.contains(&i) && alive[l.a.index()] && alive[l.b.index()] {
                g.add_edge(l.a.0, l.b.0);
            }
        }
        let Some(root) = (0..12u16).find(|&r| alive[r as usize]) else {
            continue;
        };
        let tables = up_down_tables(&g, &alive, RouterId(root));
        assert!(
            channel_dependencies_acyclic(&tables, &g, &alive),
            "case {case}"
        );
        // Connectivity: every pair in the root's component is routable.
        let dist = g.bfs_distances(root, &alive);
        for s in 0..12u16 {
            for d in 0..12u16 {
                if dist[s as usize] != u32::MAX && dist[d as usize] != u32::MAX {
                    assert!(
                        tables.route_length(RouterId(s), RouterId(d)).is_some(),
                        "case {case}: no route {s}->{d}"
                    );
                }
            }
        }
    }
}

/// The dissemination round bounds — the paper's `2h` and the tighter
/// center-based estimate — always cover the exact diameter of the live
/// cwn graph, and the center bound never exceeds `2h`.
#[test]
fn round_bound_covers_diameter() {
    let mut checked = 0u32;
    let mut case = 0u64;
    // Keep drawing until 64 connected configurations have been checked
    // (disconnected draws are outside the algorithm's operating assumption).
    while checked < 64 {
        let mut rng = DetRng::new(0xB00D ^ case);
        case += 1;
        let view = random_view(4, 4, &mut rng);
        let design = mesh_graph(4, 4);
        let g = view.cwn_graph(&design);
        let alive: Vec<bool> = (0..16u16)
            .map(|i| view.live_nodes().contains(NodeId(i)))
            .collect();
        if !g.live_connected(&alive) {
            continue;
        }
        checked += 1;
        let diam = g.exact_diameter(&alive);
        let bound = view.round_bound(&design);
        assert!(bound >= diam, "case {case}");
        let center = view.round_bound_center(&design);
        assert!(
            center >= diam,
            "case {case}: center bound sound: {center} >= {diam}"
        );
        assert!(
            center <= bound,
            "case {case}: center bound no worse than 2h"
        );
    }
}

/// Cache model invariants under random operation sequences: occupancy
/// never exceeds capacity, lookups agree with a reference map, and
/// flush returns exactly the dirty lines.
#[test]
fn cache_matches_reference_model() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0xCAC4E ^ case);
        let n_ops = 1 + rng.index(199);
        let ops: Vec<(u64, bool)> = (0..n_ops)
            .map(|_| (rng.below(64), rng.chance(0.5)))
            .collect();
        let mut cache = L2Cache::new(16);
        let mut reference: std::collections::HashMap<u64, (bool, Version)> =
            std::collections::HashMap::new();
        for (addr, write) in ops {
            let line = LineAddr(addr);
            match (cache.lookup(line).copied(), write) {
                (Some(l), true) if l.exclusive => {
                    let v = cache.store(line).unwrap();
                    reference.insert(addr, (true, v));
                }
                (Some(_), true) => {
                    cache.invalidate(line);
                    reference.remove(&addr);
                    let out = cache.insert(line, true, Version(addr));
                    track_eviction(&mut reference, out);
                    let v = cache.store(line).unwrap();
                    reference.insert(addr, (true, v));
                }
                (Some(_), false) => {
                    cache.touch(line);
                }
                (None, write) => {
                    let out = cache.insert(line, write, Version(addr));
                    track_eviction(&mut reference, out);
                    if write {
                        let v = cache.store(line).unwrap();
                        reference.insert(addr, (true, v));
                    } else {
                        reference.insert(addr, (false, Version(addr)));
                    }
                }
            }
            assert!(cache.len() <= cache.capacity(), "case {case}");
            assert_eq!(cache.len(), reference.len(), "case {case}");
        }
        // Flush returns exactly the dirty set.
        let mut dirty_expected: Vec<u64> = reference
            .iter()
            .filter(|(_, (d, _))| *d)
            .map(|(a, _)| *a)
            .collect();
        dirty_expected.sort_unstable();
        let flushed: Vec<u64> = cache.flush_all().iter().map(|l| l.addr.0).collect();
        assert_eq!(flushed, dirty_expected, "case {case}");
        assert!(cache.is_empty(), "case {case}");
    }
}

/// NodeSet behaves like a reference set.
#[test]
fn nodeset_matches_reference() {
    for case in 0..64u64 {
        let mut rng = DetRng::new(0x5E7 ^ case);
        let n_ops = rng.index(200);
        let ops: Vec<(u16, bool)> = (0..n_ops)
            .map(|_| (rng.below(256) as u16, rng.chance(0.5)))
            .collect();
        let mut set = NodeSet::new();
        let mut reference = std::collections::BTreeSet::new();
        for (id, insert) in ops {
            if insert {
                assert_eq!(set.insert(NodeId(id)), reference.insert(id), "case {case}");
            } else {
                assert_eq!(set.remove(NodeId(id)), reference.remove(&id), "case {case}");
            }
            assert_eq!(set.len(), reference.len(), "case {case}");
        }
        let members: Vec<u16> = set.iter().map(|n| n.0).collect();
        let expected: Vec<u16> = reference.into_iter().collect();
        assert_eq!(members, expected, "case {case}");
    }
}

fn track_eviction(
    reference: &mut std::collections::HashMap<u64, (bool, Version)>,
    out: flash::coherence::InsertOutcome,
) {
    match out {
        flash::coherence::InsertOutcome::Installed => {}
        flash::coherence::InsertOutcome::EvictedClean(a) => {
            reference.remove(&a.0);
        }
        flash::coherence::InsertOutcome::EvictedDirty(l) => {
            reference.remove(&l.addr.0);
        }
    }
}

/// `FaultSpec::doomed_nodes` over random nested `Multi` values (including
/// the gray-failure arms) matches a reference recursion: fail-stop victims
/// and whole pools are doomed, gray faults doom nobody, and the result is
/// sorted and duplicate-free.
#[test]
fn doomed_nodes_matches_reference_over_nested_multis() {
    use flash::machine::FaultSpec;

    fn random_spec(rng: &mut DetRng, depth: usize) -> FaultSpec {
        let node = |rng: &mut DetRng| NodeId(rng.below(16) as u16);
        let router = |rng: &mut DetRng| RouterId(rng.below(16) as u16);
        let arms = if depth > 0 { 11 } else { 10 };
        match rng.below(arms) {
            0 => FaultSpec::Node(node(rng)),
            1 => FaultSpec::Router(router(rng)),
            2 => FaultSpec::Link(router(rng), router(rng)),
            3 => FaultSpec::InfiniteLoop(node(rng)),
            4 => FaultSpec::FirmwareAssertion(node(rng)),
            5 => FaultSpec::FalseAlarm(node(rng)),
            6 => FaultSpec::FailSlow(node(rng), 2 + rng.below(7) as u32),
            7 => FaultSpec::DegradedMemory(node(rng), rng.below(101) as u8, rng.below(2_000)),
            8 => FaultSpec::LossyLink(router(rng), router(rng), rng.below(100_000) as u32),
            9 => FaultSpec::PoolFailure {
                // Duplicates on purpose: the result must still dedup.
                pool: (0..1 + rng.index(4)).map(|_| node(rng)).collect(),
            },
            _ => FaultSpec::Multi(
                (0..1 + rng.index(3))
                    .map(|_| random_spec(rng, depth - 1))
                    .collect(),
            ),
        }
    }

    fn reference_doomed(f: &FaultSpec, out: &mut Vec<u16>) {
        match f {
            FaultSpec::Node(n) | FaultSpec::InfiniteLoop(n) | FaultSpec::FirmwareAssertion(n) => {
                out.push(n.0)
            }
            FaultSpec::Router(r) => out.push(r.0),
            FaultSpec::PoolFailure { pool } => out.extend(pool.iter().map(|n| n.0)),
            FaultSpec::Multi(list) => {
                for m in list {
                    reference_doomed(m, out);
                }
            }
            FaultSpec::Link(..)
            | FaultSpec::FalseAlarm(_)
            | FaultSpec::FailSlow(..)
            | FaultSpec::DegradedMemory(..)
            | FaultSpec::LossyLink(..) => {}
        }
    }

    fn is_gray_only(f: &FaultSpec) -> bool {
        match f {
            FaultSpec::FailSlow(..) | FaultSpec::DegradedMemory(..) | FaultSpec::LossyLink(..) => {
                true
            }
            FaultSpec::Multi(list) => list.iter().all(is_gray_only),
            _ => false,
        }
    }

    for case in 0..256u64 {
        let mut rng = DetRng::new(0xD00 ^ case);
        let spec = random_spec(&mut rng, 3);
        let doomed: Vec<u16> = spec.doomed_nodes().iter().map(|n| n.0).collect();
        let mut expected = Vec::new();
        reference_doomed(&spec, &mut expected);
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(doomed, expected, "case {case}: {spec:?}");
        if is_gray_only(&spec) {
            assert!(doomed.is_empty(), "case {case}: gray-only {spec:?}");
        }
    }
}

/// Full randomized fault-injection runs validate cleanly (a randomized
/// micro Table 5.3 over machine shape, seed and fault type).
#[test]
fn randomized_experiments_validate() {
    use flash::core::{random_fault, run_fault_experiment, ExperimentConfig, FaultKind};
    use flash::machine::MachineParams;

    let shapes = [4usize, 6, 8];
    for case in 0..8u64 {
        let mut pick = DetRng::new(0xEC5 ^ case);
        let seed = pick.below(1_000);
        let kind_idx = pick.index(5);
        let n_nodes = *pick.choose(&shapes).expect("non-empty");

        let mut params = MachineParams::tiny();
        params.n_nodes = n_nodes;
        let mut rng = DetRng::new(seed);
        let fault = random_fault(FaultKind::ALL[kind_idx], n_nodes, &mut rng);
        let mut cfg = ExperimentConfig::new(params, seed);
        cfg.fill_ops = 120;
        cfg.total_ops = 350;
        let out = run_fault_experiment(&cfg, fault.clone());
        assert!(
            out.passed(),
            "case {case}: fault {:?} on {} nodes seed {}: {} / recovery completed: {}",
            fault,
            n_nodes,
            seed,
            out.validation,
            out.recovery.completed()
        );
    }
}
