//! The Section 6.3 variant: with HAL-style hardware end-to-end interconnect
//! reliability, "the cache flush step could be eliminated, but the
//! directories would still have to be scanned and their state updated to
//! reflect the loss of memory lines cached either shared or exclusive in
//! the failed portion of the machine."

use flash::core::{run_fault_experiment, ExperimentConfig, RecoveryConfig};
use flash::machine::{FaultSpec, MachineParams};
use flash::net::NodeId;

fn cfg(seed: u64, reliable: bool) -> ExperimentConfig {
    let recovery = RecoveryConfig {
        reliable_interconnect: reliable,
        ..Default::default()
    };
    let mut c = ExperimentConfig::new(MachineParams::table_5_1(), seed);
    c.recovery = recovery;
    c.fill_ops = 800;
    c.total_ops = 2_000;
    c
}

#[test]
fn node_failure_recovers_without_flushing() {
    let out = run_fault_experiment(&cfg(91, true), FaultSpec::Node(NodeId(3)));
    assert!(out.passed(), "{:?} / {}", out.recovery, out.validation);
    // No writebacks were issued and the flush step took no simulated time.
    assert_eq!(out.recovery.flush_writebacks, 0);
    let wb = out.recovery.writeback_time().unwrap();
    assert!(
        wb < flash::sim::SimDuration::from_micros(500),
        "flush step eliminated: {wb}"
    );
}

#[test]
fn assertion_failure_recovers_without_flushing() {
    let out = run_fault_experiment(&cfg(92, true), FaultSpec::FirmwareAssertion(NodeId(5)));
    assert!(out.passed(), "{:?} / {}", out.recovery, out.validation);
    assert_eq!(out.recovery.flush_writebacks, 0);
}

#[test]
fn pruned_recovery_is_much_faster_in_p4() {
    let flush = run_fault_experiment(&cfg(93, false), FaultSpec::Node(NodeId(2)));
    let pruned = run_fault_experiment(&cfg(93, true), FaultSpec::Node(NodeId(2)));
    assert!(flush.passed() && pruned.passed());
    let p4_flush = flush.recovery.p4_time().unwrap();
    let p4_pruned = pruned.recovery.p4_time().unwrap();
    assert!(
        p4_pruned.as_nanos() * 2 < p4_flush.as_nanos(),
        "pruning avoids the flush: {p4_pruned} vs {p4_flush}"
    );
}

#[test]
fn false_alarm_with_reliable_interconnect_loses_nothing() {
    let out = run_fault_experiment(&cfg(94, true), FaultSpec::FalseAlarm(NodeId(1)));
    assert!(out.passed(), "{:?} / {}", out.recovery, out.validation);
    assert_eq!(out.recovery.lines_marked_incoherent, 0);
    assert_eq!(out.validation.marked_incoherent, 0);
}

#[test]
fn batch_of_node_failures_validates_with_pruning() {
    for seed in 0..6u64 {
        let victim = NodeId(1 + (seed % 7) as u16);
        let out = run_fault_experiment(&cfg(100 + seed, true), FaultSpec::Node(victim));
        assert!(
            out.passed(),
            "seed {seed}: {:?} / {}",
            out.recovery,
            out.validation
        );
    }
}
