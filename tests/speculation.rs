//! The incorrect-speculation hazard of Section 3.3 and the firewall's
//! containment of it: "an incorrectly speculated write may cause a
//! processor to fetch some arbitrary line into its cache in exclusive mode.
//! If that processor fails, the data is lost. ... This effect can cause
//! multiple cells to crash after a single hardware fault. ... The firewall
//! allows cells to protect their data against speculative writes."

use flash::coherence::DirState;
use flash::coherence::LineAddr;
use flash::core::{build_machine, RecoveryConfig};
use flash::hive::CellLayout;
use flash::machine::{FaultSpec, MachineParams, ProcOp, Script, Workload};
use flash::net::NodeId;
use flash::sim::SimTime;

const LPN: u64 = 8192;

/// Node 3 speculatively writes a line of node 0's memory, then dies.
/// Returns the post-recovery directory state of that line at its home.
fn run(firewall: bool) -> (DirState, u64) {
    let victim_line = LineAddr(400); // homed on node 0 (cell 0's data)
    let mut params = MachineParams::tiny();
    params.magic.firewall_enabled = firewall;
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        match n.0 {
            3 => Box::new(Script::new([ProcOp::SpeculativeWrite(victim_line)])),
            1 => Box::new(Script::new(
                // Detection traffic toward node 3 after it dies.
                (0..40).flat_map(|i| {
                    [
                        ProcOp::Compute(100_000),
                        ProcOp::Read(LineAddr(3 * LPN + 40 + i)),
                    ]
                }),
            )),
            _ => Box::new(Script::new([])),
        }
    };
    let mut m = build_machine(params, RecoveryConfig::default(), mk, 33);
    // Hive cell setup: one cell per node, so node 0's pages are only
    // writable by node 0.
    let layout = CellLayout::contiguous(4, 4);
    flash::hive::os::configure(
        &mut m,
        &layout,
        &flash::hive::HiveConfig {
            n_cells: 4,
            ..Default::default()
        },
    );
    m.start();
    m.schedule_fault(SimTime::from_nanos(600_000), FaultSpec::Node(NodeId(3)));
    m.run_until(SimTime::MAX);
    let state = m.st().nodes[0].dir.state(victim_line);
    let denials = m.st().counters.get("firewall_denials");
    assert!(m.ext().report.completed(), "recovery ran");
    assert!(m.st().validate().passed(), "{}", m.st().validate());
    (state, denials)
}

#[test]
fn without_firewall_a_remote_fault_destroys_cell_data() {
    let (state, denials) = run(false);
    assert_eq!(denials, 0);
    // Node 3 held cell 0's line exclusive when it died: the line is lost
    // even though cell 0's hardware is healthy.
    assert_eq!(state, DirState::Incoherent);
}

#[test]
fn firewall_contains_the_speculative_write() {
    let (state, denials) = run(true);
    assert_eq!(denials, 1, "the ACL check refused the exclusive fetch");
    // Cell 0's data survived the failure of cell 3's node.
    assert_eq!(state, DirState::Uncached);
}

#[test]
fn speculative_faults_are_invisible_to_the_program() {
    // A speculating workload completes with zero program-visible bus
    // errors: wrong-path references that hit the MAGIC-protected range (or
    // any other guard) are terminated and silently discarded.
    let params = MachineParams::tiny();
    let layout = params.layout();
    let prot = params.protected_lines;
    let mut m = build_machine(
        params,
        RecoveryConfig::default(),
        move |_| {
            Box::new(
                flash::machine::RandomFill::valid_system_range(600, 0.4, layout, prot)
                    .with_speculation(0.2),
            )
        },
        34,
    );
    m.start();
    m.run_until(SimTime::MAX);
    assert!(
        m.st().counters.get("speculative_faults_discarded") > 0,
        "some wrong-path stores hit the protected range"
    );
    assert_eq!(
        m.st().counters.get("bus_errors"),
        0,
        "speculation faults stay invisible"
    );
    for node in &m.st().nodes {
        assert_eq!(node.bus_errors, 0);
    }
}
