//! The ownership-upgrade optimization: a store hitting a held shared copy
//! sends a 1-flit `UpgradeReq` instead of refetching 9 flits of data, with
//! fallback to the full path when the copy was concurrently invalidated.

use flash::coherence::{DirState, LineAddr};
use flash::core::{build_machine, RecoveryConfig};
use flash::machine::{FaultSpec, MachineParams, ProcOp, Script, Workload};
use flash::net::NodeId;
use flash::sim::SimTime;

#[test]
fn store_to_shared_copy_upgrades_in_place() {
    let line = LineAddr(100); // homed on node 0
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        if n == NodeId(2) {
            Box::new(Script::new([
                ProcOp::Read(line),  // install shared
                ProcOp::Write(line), // upgrade, no data transfer
            ]))
        } else {
            Box::new(Script::new([]))
        }
    };
    let mut m = build_machine(MachineParams::tiny(), RecoveryConfig::default(), mk, 71);
    m.start();
    m.run_until(SimTime::MAX);
    assert_eq!(m.st().counters.get("upgrade_requests"), 1);
    assert_eq!(m.st().counters.get("upgrade_ack_without_copy"), 0);
    let c = m.st().nodes[2].cache.lookup(line).expect("still cached");
    assert!(c.exclusive);
    assert_eq!(c.version.0, 1, "the store committed on the upgraded copy");
    assert_eq!(
        m.st().nodes[0].dir.state(line),
        DirState::Exclusive(NodeId(2))
    );
    assert_eq!(m.st().oracle.expected_version(line).0, 1);
}

#[test]
fn upgrade_invalidates_other_sharers_first() {
    let line = LineAddr(200);
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        match n.0 {
            1 => Box::new(Script::new([ProcOp::Read(line)])),
            3 => Box::new(Script::new([ProcOp::Read(line)])),
            2 => Box::new(Script::new([
                ProcOp::Read(line),
                ProcOp::Compute(100_000), // let 1 and 3 join the sharer set
                ProcOp::Write(line),
            ])),
            _ => Box::new(Script::new([])),
        }
    };
    let mut m = build_machine(MachineParams::tiny(), RecoveryConfig::default(), mk, 72);
    m.start();
    m.run_until(SimTime::MAX);
    assert!(m.st().counters.get("upgrade_requests") >= 1);
    assert!(
        m.st().nodes[1].cache.lookup(line).is_none(),
        "sharer 1 invalidated"
    );
    assert!(
        m.st().nodes[3].cache.lookup(line).is_none(),
        "sharer 3 invalidated"
    );
    assert_eq!(
        m.st().nodes[0].dir.state(line),
        DirState::Exclusive(NodeId(2))
    );
    assert_eq!(m.st().oracle.expected_version(line).0, 1);
}

#[test]
fn concurrent_upgrades_race_safely() {
    // Both node 1 and node 2 hold the line shared and upgrade
    // "simultaneously": the home serializes them; the loser's copy is
    // invalidated mid-flight and its request falls back to the full-data
    // path (possibly after NAK retries against the transient state).
    let line = LineAddr(300);
    let mk = move |n: NodeId| -> Box<dyn Workload> {
        match n.0 {
            1 | 2 => Box::new(Script::new([
                ProcOp::Read(line),
                ProcOp::Compute(50_000),
                ProcOp::Write(line),
                ProcOp::Write(line),
            ])),
            _ => Box::new(Script::new([])),
        }
    };
    let mut m = build_machine(MachineParams::tiny(), RecoveryConfig::default(), mk, 73);
    m.start();
    m.run_until(SimTime::MAX);
    // Four stores committed in total, whatever the interleaving.
    assert_eq!(m.st().oracle.expected_version(line).0, 4);
    let v = m.st().validate();
    assert!(v.passed(), "{v}");
}

#[test]
fn upgrade_across_recovery_validates() {
    // Upgrades in flight while a node dies: recovery must neither lose the
    // stored data nor strand a cancelled upgrade's ownership.
    let params = MachineParams::table_5_1();
    let layout = params.layout();
    let prot = params.protected_lines;
    let mut m = build_machine(
        params,
        RecoveryConfig::default(),
        move |_| {
            // Heavy read-then-write reuse maximizes upgrade traffic.
            Box::new(flash::machine::RandomFill::valid_system_range(
                3_000, 0.6, layout, prot,
            ))
        },
        74,
    );
    m.start();
    m.run_for(flash::sim::SimDuration::from_micros(400));
    m.schedule_fault(
        m.now() + flash::sim::SimDuration::from_nanos(1),
        FaultSpec::Node(NodeId(5)),
    );
    m.run_until(SimTime::MAX);
    assert!(m.ext().report.completed());
    let v = m.st().validate();
    assert!(v.passed(), "{v}");
    assert!(
        m.st().counters.get("upgrade_requests") > 0,
        "upgrades exercised"
    );
}
